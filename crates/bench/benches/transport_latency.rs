//! Transport comparison — end-to-end notification latency (app-server
//! write → push notification at the subscriber) across deployment,
//! codec, and batching:
//!
//! * event layer in-process vs. over TCP loopback (app server remote,
//!   and cluster + app server both remote);
//! * envelope codec: JSON text vs. the binary (`IVBD`) codec;
//! * write-path batching off (`max_write_batch`/`max_batch` forced to 1,
//!   one write in flight) vs. on (defaults, pipelined bursts).
//!
//! The paper's prototype pays this hop through Redis (§5.3); the
//! interesting question for the reproduction is how much of the ~9 ms
//! average (Table 3) is transport — and how much of *that* is codec and
//! syscall overhead the binary codec + frame coalescing win back.
//!
//! Writes `BENCH_transport.json` with every row plus the headline
//! improvement of the binary+batched TCP path over the JSON unbatched
//! path (the pre-optimization wire configuration).

use invalidb_bench::table;
use invalidb_broker::{Broker, BrokerHandle};
use invalidb_client::{AppServer, AppServerConfig, ClientEvent};
use invalidb_cluster::{Coordinator, CoordinatorConfig, Worker, WorkerConfig};
use invalidb_common::{doc, Document, Key, QuerySpec, Value};
use invalidb_core::{Cluster, ClusterConfig};
use invalidb_json::WireCodec;
use invalidb_net::{BrokerServer, BrokerServerConfig, RemoteBroker, RemoteBrokerConfig};
use invalidb_store::Store;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Stats {
    mean_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn stats(mut latencies_us: Vec<f64>) -> Stats {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    let p99 = latencies_us[((latencies_us.len() - 1) as f64 * 0.99) as usize];
    let max = *latencies_us.last().unwrap();
    Stats { mean_us: mean, p99_us: p99, max_us: max }
}

/// One measured wire configuration.
struct Wire {
    codec: WireCodec,
    /// `false` pins every batching knob to 1 and keeps a single write in
    /// flight; `true` uses the batching defaults and pipelines `burst`
    /// writes per round.
    batched: bool,
    /// Overrides the topology drain bound (`ClusterConfig::max_batch`)
    /// independently of the wire-level knobs — the batch-size sweep holds
    /// frame coalescing fixed and varies only this.
    topology_batch: Option<usize>,
    /// Overrides the pipelined writes per round. The batch sweep uses a
    /// deeper burst than the codec grid so multi-message scheduling turns
    /// actually occur at every swept bound.
    burst_override: Option<usize>,
}

impl Wire {
    fn new(codec: WireCodec, batched: bool) -> Wire {
        Wire { codec, batched, topology_batch: None, burst_override: None }
    }

    fn with_topology_batch(codec: WireCodec, max_batch: usize, burst: usize) -> Wire {
        Wire { codec, batched: true, topology_batch: Some(max_batch), burst_override: Some(burst) }
    }

    fn burst(&self) -> usize {
        if let Some(b) = self.burst_override {
            return b;
        }
        if self.batched {
            std::env::var("INVALIDB_BENCH_BURST").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
        } else {
            1
        }
    }

    fn max_batch(&self) -> usize {
        if let Some(mb) = self.topology_batch {
            return mb;
        }
        if self.batched {
            ClusterConfig::new(1, 1).max_batch
        } else {
            1
        }
    }

    fn max_write_batch(&self) -> usize {
        if self.batched {
            RemoteBrokerConfig::default().max_write_batch
        } else {
            1
        }
    }
}

/// Runs `rounds` write→notification rounds on a freshly started stack
/// whose cluster and app server sit on the given broker handles. Each
/// round pipelines `wire.burst()` writes and waits for all of their
/// notifications; the recorded latency is the per-write share of the
/// round, so burst-1 degenerates to the plain round-trip time.
fn measure(
    cluster_link: impl Into<BrokerHandle>,
    app_link: impl Into<BrokerHandle>,
    tenant: &str,
    rounds: usize,
    wire: &Wire,
) -> Stats {
    let cluster = Cluster::start(
        cluster_link,
        ClusterConfig::builder(1, 1).wire_codec(wire.codec).max_batch(wire.max_batch()).build().unwrap(),
    );
    let s = run_workload(app_link, tenant, rounds, wire);
    cluster.shutdown();
    s
}

/// The measurement loop alone: assumes a matching grid is already hosted
/// somewhere (in-process cluster or a remote worker) on the same event
/// layer as `app_link`.
fn run_workload(app_link: impl Into<BrokerHandle>, tenant: &str, rounds: usize, wire: &Wire) -> Stats {
    let store = Arc::new(Store::new());
    let config = AppServerConfig::builder().wire_codec(wire.codec).build().unwrap();
    let app = AppServer::start(tenant, Arc::clone(&store), app_link, config);

    // When the cluster sits behind a TCP link too, its SUBSCRIBE frames
    // race the app server's subscribe envelope at the shared broker
    // (at-most-once pub/sub): retry the subscription until the initial
    // result proves the cluster saw it.
    let spec = QuerySpec::filter("pings", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match sub.events().timeout(Duration::from_millis(500)).next() {
            Some(ClientEvent::Initial(_)) => break,
            _ => {
                assert!(Instant::now() < deadline, "initial result never arrived");
                drop(sub);
                sub = app.subscribe(&spec).unwrap();
            }
        }
    }

    // Keys cycle through a bounded space so the live result reaches the
    // same steady-state size in every configuration (result maintenance
    // cost must not scale with the total write count of a row).
    const KEY_SPACE: i64 = 64;
    let burst = wire.burst();
    let mut run_round = |round: usize, latencies: Option<&mut Vec<f64>>| {
        let start = Instant::now();
        for j in 0..burst {
            let i = (round * burst + j) as i64;
            app.save("pings", Key::of(i % KEY_SPACE), doc! { "n" => i }).unwrap();
        }
        let mut pending = burst;
        while pending > 0 {
            if let ClientEvent::Change(_) =
                sub.events().timeout(Duration::from_secs(10)).next().expect("notification")
            {
                pending -= 1;
            }
        }
        if let Some(latencies) = latencies {
            let per_write = start.elapsed().as_secs_f64() * 1e6 / burst as f64;
            latencies.extend(std::iter::repeat_n(per_write, burst));
        }
    };
    // Warm-up: populate the key space and let every thread/queue go hot.
    let warmup = (KEY_SPACE as usize).div_ceil(burst).max(4);
    for round in 0..warmup {
        run_round(round, None);
    }
    let mut latencies = Vec::with_capacity(rounds * burst);
    for round in warmup..warmup + rounds {
        run_round(round, Some(&mut latencies));
    }
    drop(sub);
    stats(latencies)
}

fn remote(addr: std::net::SocketAddr, name: &str, wire: &Wire) -> RemoteBroker {
    let link = RemoteBroker::connect(
        addr.to_string(),
        RemoteBrokerConfig {
            client_name: name.into(),
            max_write_batch: wire.max_write_batch(),
            ..Default::default()
        },
    );
    assert!(link.wait_connected(Duration::from_secs(5)));
    link
}

fn server_config(wire: &Wire) -> BrokerServerConfig {
    BrokerServerConfig { max_write_batch: wire.max_write_batch(), ..Default::default() }
}

/// Measures deployment (b): cluster local to the broker, app server over
/// TCP loopback — 2 TCP hops per round trip (write in, notification out).
fn measure_tcp_app(tenant: &str, rounds: usize, wire: &Wire) -> Stats {
    let broker = Broker::new();
    let server = BrokerServer::bind("127.0.0.1:0", broker.clone(), server_config(wire)).expect("bind");
    let app_link = remote(server.local_addr(), tenant, wire);
    let s = measure(broker, app_link.clone(), tenant, rounds, wire);
    app_link.shutdown();
    s
}

/// The `invalidb-workerd` binary built alongside this bench, if present
/// (`target/<profile>/deps/transport_latency-*` -> `target/<profile>/`).
fn workerd_path() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let path = exe.parent()?.parent()?.join("invalidb-workerd");
    path.exists().then_some(path)
}

/// Measures deployment (d): the matching grid hosted by a coordinator-
/// assigned worker in a separate OS process (`invalidb-workerd`), app
/// server over TCP loopback. Falls back to an in-process [`Worker`] when
/// the daemon binary is not built; returns whether the worker was remote.
fn measure_multiprocess(tenant: &str, rounds: usize, wire: &Wire) -> (Stats, bool) {
    let broker = Broker::new();
    let server = BrokerServer::bind("127.0.0.1:0", broker.clone(), server_config(wire)).expect("bind");
    let coordinator = Coordinator::bind(
        "127.0.0.1:0",
        broker.clone(),
        CoordinatorConfig::new(invalidb_common::GridShape::new(1, 1)),
    )
    .expect("bind coordinator");

    let mut child = None;
    let mut local_worker = None;
    let remote_worker = match workerd_path() {
        Some(path) => {
            child = Some(
                std::process::Command::new(path)
                    .args([
                        "--coordinator",
                        &coordinator.local_addr().to_string(),
                        "--event",
                        &server.local_addr().to_string(),
                        "--name",
                        "bench-worker",
                    ])
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn invalidb-workerd"),
            );
            true
        }
        None => {
            let config = WorkerConfig::new(
                "bench-worker",
                ClusterConfig::builder(1, 1)
                    .wire_codec(wire.codec)
                    .max_batch(wire.max_batch())
                    .build()
                    .unwrap(),
            );
            local_worker =
                Some(Worker::connect(coordinator.local_addr().to_string(), broker.clone(), config));
            false
        }
    };
    assert!(coordinator.wait_assigned(Duration::from_secs(30)), "worker never got the grid");

    let app_link = remote(server.local_addr(), tenant, wire);
    let s = run_workload(app_link.clone(), tenant, rounds, wire);
    app_link.shutdown();
    if let Some(mut child) = child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    if let Some(worker) = local_worker.take() {
        worker.shutdown();
    }
    coordinator.shutdown();
    (s, remote_worker)
}

fn main() {
    let rounds = (300.0 * invalidb_bench::scale()).max(20.0) as usize;
    table::banner(
        "Transport",
        "Notification latency (save -> push notification): deployment x codec x batching",
    );

    let json_unbatched = Wire::new(WireCodec::Json, false);
    let json_batched = Wire::new(WireCodec::Json, true);
    let bin_unbatched = Wire::new(WireCodec::Binary, false);
    let bin_batched = Wire::new(WireCodec::Binary, true);

    let mut rows = Vec::new();
    let mut json_rows: Vec<Value> = Vec::new();
    let mut record = |label: &str, transport: &str, wire: &Wire, s: &Stats| {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", s.mean_us),
            format!("{:.0}", s.p99_us),
            format!("{:.0}", s.max_us),
        ]);
        let mut row = Document::with_capacity(8);
        row.insert("label", label);
        row.insert("transport", transport);
        row.insert("codec", if matches!(wire.codec, WireCodec::Binary) { "binary" } else { "json" });
        row.insert("batched", wire.batched);
        row.insert("max_batch", wire.max_batch() as i64);
        row.insert("mean_us", s.mean_us);
        row.insert("p99_us", s.p99_us);
        row.insert("max_us", s.max_us);
        json_rows.push(Value::from(row));
    };

    // (a) Everything in-process: the repo's default deployment.
    let broker = Broker::new();
    let s = measure(broker.clone(), broker, "bench-inproc", rounds, &bin_batched);
    record("in-process broker", "in-process", &bin_batched, &s);

    // (b) App server over TCP loopback, across the codec x batching grid.
    // "JSON, unbatched" is the wire configuration before this
    // optimization round — the baseline the improvement is quoted against.
    let baseline = measure_tcp_app("bench-tcp-ju", rounds, &json_unbatched);
    record("TCP loopback - JSON, unbatched", "tcp-app", &json_unbatched, &baseline);
    let s = measure_tcp_app("bench-tcp-jb", rounds, &json_batched);
    record("TCP loopback - JSON, batched", "tcp-app", &json_batched, &s);
    let s = measure_tcp_app("bench-tcp-bu", rounds, &bin_unbatched);
    record("TCP loopback - binary, unbatched", "tcp-app", &bin_unbatched, &s);
    let improved = measure_tcp_app("bench-tcp-bb", rounds, &bin_batched);
    record("TCP loopback - binary, batched", "tcp-app", &bin_batched, &improved);

    // Batch-size sweep over the topology drain bound (`ClusterConfig::
    // max_batch`): the wire stays fixed at the binary codec with frame
    // coalescing on, so the sweep isolates what mini-batch matching alone
    // buys. `max_batch = 1` reproduces the one-message-per-turn pipeline
    // this optimization round started from — the baseline the batch gain
    // is quoted against.
    let sweep_burst = 64;
    let mut sweep_rows: Vec<Value> = Vec::new();
    let mut sweep_means: Vec<(usize, f64)> = Vec::new();
    for mb in [1usize, 8, ClusterConfig::new(1, 1).max_batch] {
        let wire = Wire::with_topology_batch(WireCodec::Binary, mb, sweep_burst);
        let s = measure_tcp_app(&format!("bench-tcp-mb{mb}"), rounds, &wire);
        record(&format!("TCP loopback - binary, max_batch={mb}"), "tcp-app", &wire, &s);
        let mut row = Document::with_capacity(5);
        row.insert("max_batch", mb as i64);
        row.insert("burst", sweep_burst as i64);
        row.insert("mean_us", s.mean_us);
        row.insert("p99_us", s.p99_us);
        row.insert("max_us", s.max_us);
        sweep_rows.push(Value::from(row));
        sweep_means.push((mb, s.mean_us));
    }
    let sweep_baseline = sweep_means[0].1;
    let (best_mb, best_mean) = sweep_means
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("sweep is non-empty");
    let batch_gain = (sweep_baseline - best_mean) / sweep_baseline * 100.0;

    // (c) Cluster *and* app server both remote — every envelope crosses
    // the wire twice (publish up, deliver down): 4 TCP hops per round.
    let broker = Broker::new();
    let server = BrokerServer::bind("127.0.0.1:0", broker, server_config(&bin_batched)).expect("bind");
    let cluster_link = remote(server.local_addr(), "bench-cluster", &bin_batched);
    let app_link = remote(server.local_addr(), "bench-app2", &bin_batched);
    let s = measure(cluster_link.clone(), app_link.clone(), "bench-tcp-both", rounds, &bin_batched);
    cluster_link.shutdown();
    app_link.shutdown();
    record("TCP loopback x2 - binary, batched", "tcp-both", &bin_batched, &s);

    // (d) The grid in a separate OS process, assigned by a coordinator —
    // the multi-process cluster deployment.
    let (s, remote_worker) = measure_multiprocess("bench-multiproc", rounds, &bin_batched);
    record("multi-process worker - binary, batched", "multiprocess", &bin_batched, &s);
    if let Some(Value::Object(row)) = json_rows.last_mut() {
        row.insert("remote_worker", remote_worker);
    }
    if !remote_worker {
        println!("note: invalidb-workerd not built; multiprocess row used an in-process worker");
    }

    table::table(&["deployment / wire", "avg (us)", "p99 (us)", "max (us)"], &rows);
    let improvement = (baseline.mean_us - improved.mean_us) / baseline.mean_us * 100.0;
    println!("rounds per row: {rounds} (scale with INVALIDB_BENCH_SCALE)");
    println!(
        "TCP write path: binary+batched vs JSON+unbatched: {:.0} us -> {:.0} us ({improvement:+.1}%)",
        baseline.mean_us, improved.mean_us
    );
    println!(
        "topology batch sweep (binary): max_batch=1 {:.0} us -> max_batch={best_mb} {:.0} us ({batch_gain:+.1}%)",
        sweep_baseline, best_mean
    );
    println!("paper: ~9 ms end-to-end average through Redis + Storm (Table 3)");

    let mut out = Document::with_capacity(9);
    out.insert("rounds", rounds as i64);
    out.insert("burst_batched", bin_batched.burst() as i64);
    out.insert("rows", Value::Array(json_rows));
    out.insert("baseline", "TCP loopback - JSON, unbatched");
    out.insert("improvement_pct", improvement);
    out.insert("batch_sweep", Value::Array(sweep_rows));
    out.insert("batch_baseline_max_batch", 1i64);
    out.insert("batch_gain_pct", batch_gain);
    let json = invalidb_json::to_string(&out);
    match std::fs::write(invalidb_bench::artifact_path("BENCH_transport.json"), &json) {
        Ok(()) => println!("\nmachine-readable results written to BENCH_transport.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_transport.json: {e}"),
    }
}
