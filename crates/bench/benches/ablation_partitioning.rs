//! Ablation — why *two-dimensional* workload partitioning (§5.1).
//!
//! State-of-the-art systems partition queries only ("responsibility for
//! individual queries is not shared among nodes"): every node still sees
//! the full write stream, so overall throughput stays bottlenecked by
//! single-machine capacity (challenge C1). This ablation gives each scheme
//! the same 16-node budget and measures what it can sustain:
//!
//! * `16 × 1` — query-only partitioning (the log-tailing architecture);
//! * `1 × 16` — write-only partitioning;
//! * `4 × 4`  — InvaliDB's grid.

use invalidb_bench::table;
use invalidb_sim::{max_sustainable_queries, max_sustainable_writes, SimParams, SlaSearch};

fn main() {
    let scale = invalidb_bench::scale();
    let search = SlaSearch { sla_p99_ms: 30.0, duration_s: 6.0 * scale };
    table::banner("Ablation", "1-D vs. 2-D partitioning at a fixed budget of 16 matching nodes");

    let mut rows = Vec::new();
    for (label, qp, wp) in
        [("query-only (16x1)", 16usize, 1usize), ("write-only (1x16)", 1, 16), ("2-D grid (4x4)", 4, 4)]
    {
        // Max queries at the paper's 1k ops/s.
        let q_cap = max_sustainable_queries(&SimParams::new(qp, wp), &search, 500, 40_000);
        // Max write throughput at the paper's 1k queries.
        let w_cap = max_sustainable_writes(
            &SimParams::new(qp, wp),
            &search,
            250.0 * wp as f64,
            3_000.0 * wp as f64 + 2_000.0,
        );
        rows.push(vec![label.to_string(), format!("{q_cap}"), format!("{w_cap:.0}")]);
    }
    table::table(&["scheme (QP x WP)", "max queries @ 1k ops/s", "max ops/s @ 1k queries"], &rows);
    println!("expectation: query-only partitioning cannot raise write throughput (every node");
    println!("sees the full stream); write-only cannot raise query capacity; the grid lifts");
    println!("both — and can be reshaped (+qp / +wp) to match the workload (§5.1).");
}
