//! Live-cluster validation of the two-dimensional workload distribution
//! (the mechanism behind Figures 4/5), on the *real* multithreaded cluster
//! with JSON-serialized event-layer traffic.
//!
//! Full 1–16-partition scalability sweeps run on the simulator, because
//! parallel speedup needs at least as many cores as matching nodes — this
//! bench reports the host's core count and, independent of it, validates
//! the property that makes the speedup possible:
//!
//! * **Read side** — with more query partitions, each node's load share
//!   (subscriptions + writes it must process) stays bounded while the total
//!   query count grows: a write is matched against only `1/QP` of queries
//!   per node;
//! * **Write side** — with more write partitions, each node processes only
//!   `1/WP` of the write stream;
//! * latency stays flat and delivery complete throughout;
//! * the Quaestor deployment adds only a small constant overhead (§7.3).

use invalidb_bench::live::{run_live, LiveConfig};
use invalidb_bench::table;

fn main() {
    let scale = invalidb_bench::scale().max(0.2);
    println!(
        "host cores: {} (absolute parallel speedup needs >= grid-size cores; this bench \
         validates the load-distribution mechanism instead)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    table::banner("Live A", "Read side: total queries grow with QP at bounded per-node load");
    let mut rows = Vec::new();
    for (qp, queries) in [(1usize, 200usize), (2, 400), (4, 800)] {
        let cfg = LiveConfig {
            qp,
            wp: 1,
            queries: (queries as f64 * scale) as usize,
            matching_writes: 50,
            writes: (400.0 * scale) as usize,
            writes_per_sec: 200.0,
            ..LiveConfig::default()
        };
        let run = run_live(&cfg);
        // Per-node share of the matching workload: each write is processed
        // by QP nodes, but each node evaluates only queries/QP queries, so
        // the per-node (query x write) work stays constant as QP and the
        // query count grow together.
        let per_node_matchings = (cfg.queries / qp) as u64 * run.writes;
        rows.push(vec![
            format!("{qp} QP x 1 WP"),
            format!("{}", cfg.queries),
            format!("{}", cfg.queries / qp),
            format!("{per_node_matchings}"),
            format!("{:.1}", run.mean_ms()),
            format!("{:.0}%", run.delivery_ratio() * 100.0),
        ]);
    }
    table::table(
        &["grid", "total queries", "queries/node", "evals/node", "mean (ms)", "delivered"],
        &rows,
    );
    println!("expectation: total queries quadruple, per-node evaluations stay constant");

    table::banner("Live B", "Write side: per-node write share shrinks with WP");
    let mut rows = Vec::new();
    for wp in [1usize, 2, 4] {
        let cfg = LiveConfig {
            qp: 1,
            wp,
            queries: (200.0 * scale) as usize,
            matching_writes: 50,
            writes: (400.0 * scale) as usize,
            writes_per_sec: 200.0,
            ..LiveConfig::default()
        };
        let run = run_live(&cfg);
        // Subtract subscription processing: each subscription reaches all WP
        // nodes of its row; the remainder is after-image traffic.
        let write_msgs = run.matching_processed.saturating_sub((cfg.queries * wp) as u64);
        let per_node_writes = write_msgs as f64 / run.matching_nodes as f64;
        rows.push(vec![
            format!("1 QP x {wp} WP"),
            format!("{}", run.writes),
            format!("{per_node_writes:.0}"),
            format!("{:.2}", per_node_writes / run.writes.max(1) as f64),
            format!("{:.1}", run.mean_ms()),
            format!("{:.0}%", run.delivery_ratio() * 100.0),
        ]);
    }
    table::table(
        &["grid", "writes issued", "writes/node", "node share", "mean (ms)", "delivered"],
        &rows,
    );
    println!("expectation: node share halves per doubling of WP (1.0 -> 0.5 -> 0.25)");

    table::banner("Live C", "Quaestor overhead: app server in the path (real cluster)");
    let mut rows = Vec::new();
    for via_app in [false, true] {
        let cfg = LiveConfig {
            qp: 2,
            wp: 2,
            queries: 100,
            matching_writes: 60,
            writes: 400,
            writes_per_sec: 400.0,
            via_app_server: via_app,
            ..LiveConfig::default()
        };
        let run = run_live(&cfg);
        rows.push(vec![
            if via_app { "quaestor (app server)".into() } else { "standalone".to_string() },
            format!("{:.2}", run.mean_ms()),
            format!("{:.2}", run.p99_ms()),
            format!("{:.0}%", run.delivery_ratio() * 100.0),
        ]);
    }
    table::table(&["deployment", "mean (ms)", "p99 (ms)", "delivered"], &rows);
    println!("expectation: constant overhead from the store write + app-server relay (in-process");
    println!("hops are far cheaper than the paper's networked ~5 ms)");
}
