//! Q-scaling bench: per-write matching cost as the number of active queries
//! grows from 1k to 100k, across filter-shape mixes that stress different
//! parts of the multi-query index:
//!
//! - `unique_ranges`      — every subscription has its own two-sided range
//!                          (the paper's workload; indexable before and after
//!                          this PR, so both modes stay flat).
//! - `shared_conjunctions`— conjunctive filters drawn from a bounded pool of
//!                          status × price-bound combinations. The pre-PR
//!                          planner cannot index a conjunction at all and
//!                          falls back to scanning every distinct filter per
//!                          write; the new planner anchors each query under
//!                          its equality lane and memoizes shared atoms.
//! - `duplicated_filters` — many subscriptions over a small pool of textually
//!                          identical filters. Both modes dedup by query hash,
//!                          so this measures cost per *distinct* filter.
//! - `mixed`              — one third of each.
//!
//! Two modes per (shape, Q) cell:
//! - `new`  — `IndexOptions::default()` (eq lanes + conjunctive anchoring)
//!            with per-write shared predicate evaluation via `conjuncts()`.
//! - `pre`  — `IndexOptions::legacy()` (the pre-PR single-range planner) with
//!            whole-query `matches()` per candidate, i.e. the old path.
//!
//! Writes `BENCH_qscale.json` (validated by `examples/bench_check.rs`).
//! `INVALIDB_BENCH_SCALE` scales the query counts; 0 runs a smoke pass.

use invalidb_bench::table;
use invalidb_common::{doc, Document, QuerySpec, Value};
use invalidb_core::query_index::{IndexOptions, QueryIndex};
use invalidb_query::{
    decompose, filter_hash, FilterHash, MongoQueryEngine, PredicateHash, QueryEngine,
};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::time::Instant;

const STATUSES: [&str; 8] =
    ["open", "closed", "pending", "active", "archived", "draft", "review", "done"];

/// Deterministic splitmix64 so runs are reproducible without a rand dep.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The i-th filter of a shape, for a target population of `q` queries.
fn filter_for(shape: &str, i: usize, q: usize) -> Document {
    match shape {
        // Distinct two-sided ranges over a domain that grows with Q, so each
        // write stabs a roughly constant number of windows at any scale.
        "unique_ranges" => {
            let lo = (i as i64) * 10;
            doc! { "random" => doc! { "$gte" => lo, "$lt" => lo + 10 } }
        }
        // 8 statuses x 64 price bounds = 512 distinct conjunctions; beyond
        // that, subscriptions repeat filters from the pool.
        "shared_conjunctions" => {
            let status = STATUSES[i % 8];
            let bound = (((i / 8) % 64) as i64 + 1) * 10;
            doc! { "status" => status, "price" => doc! { "$lt" => bound } }
        }
        // 16 tags x 4 quantity bounds = 64 distinct filters, heavily
        // duplicated across subscriptions.
        "duplicated_filters" => {
            let tag = format!("t{}", i % 16);
            let bound = (((i / 16) % 4) as i64) * 25;
            doc! { "tag" => tag, "qty" => doc! { "$gte" => bound } }
        }
        "mixed" => filter_for(
            ["unique_ranges", "shared_conjunctions", "duplicated_filters"][i % 3],
            i / 3,
            q / 3,
        ),
        _ => unreachable!("unknown shape {shape}"),
    }
}

fn write_doc(rng: &mut Rng, q: usize) -> Document {
    let r = rng.below((q as u64) * 10) as i64;
    doc! {
        "random" => r,
        "status" => STATUSES[rng.below(8) as usize],
        "price" => (rng.below(640)) as i64,
        "tag" => format!("t{}", rng.below(16)),
        "qty" => (rng.below(100)) as i64,
    }
}

struct Cell {
    shape: &'static str,
    q: usize,
    q_distinct: usize,
    writes: usize,
    new_us: f64,
    pre_us: f64,
}

/// Measures one (shape, Q) cell in both modes and returns µs/write for each.
fn run_cell(shape: &'static str, q: usize) -> Cell {
    // Dedup by FilterHash — mirrors the matching node, which keeps one query
    // group per QueryHash in both the pre-PR and the new code.
    let mut seen: HashSet<FilterHash> = HashSet::new();
    let mut filters: Vec<Document> = Vec::new();
    for i in 0..q {
        let f = filter_for(shape, i, q);
        if seen.insert(filter_hash(&decompose(&f))) {
            filters.push(f);
        }
    }
    let q_distinct = filters.len();
    let prepared: Vec<_> = filters
        .iter()
        .map(|f| MongoQueryEngine.prepare(&QuerySpec::filter("t", f.clone())).unwrap())
        .collect();

    let mut new_index: QueryIndex<usize> = QueryIndex::with_options(IndexOptions::default());
    let mut pre_index: QueryIndex<usize> = QueryIndex::with_options(IndexOptions::legacy());
    for (j, f) in filters.iter().enumerate() {
        new_index.insert(j, f);
        pre_index.insert(j, f);
    }

    let writes = (2_000_000 / q.max(1)).clamp(50, 2_000);
    let mut rng = Rng(0xC0FF_EE00 + q as u64);
    let docs: Vec<Document> = (0..writes).map(|_| write_doc(&mut rng, q)).collect();

    // New path: eq-lane/conjunctive candidates, residual atoms memoized per
    // write (the bench-level twin of the matching node's PredCache).
    let mut cands: Vec<usize> = Vec::new();
    let mut memo: HashMap<PredicateHash, bool> = HashMap::new();
    let mut run_new = |docs: &[Document]| {
        let mut hits = 0usize;
        for d in docs {
            memo.clear();
            new_index.candidates(d, &mut cands);
            for &id in &cands {
                let p = &prepared[id];
                let matched = match p.conjuncts() {
                    Some(atoms) => atoms
                        .iter()
                        .all(|a| *memo.entry(a.hash()).or_insert_with(|| a.matches(d))),
                    None => p.matches(d),
                };
                hits += matched as usize;
            }
        }
        hits
    };
    run_new(&docs[..docs.len().min(10)]); // warmup
    let start = Instant::now();
    let new_hits = run_new(&docs);
    let new_us = start.elapsed().as_secs_f64() * 1e6 / writes as f64;

    // Pre-PR path: legacy planner candidates, whole-query evaluation.
    let mut run_pre = |docs: &[Document]| {
        let mut hits = 0usize;
        for d in docs {
            pre_index.candidates(d, &mut cands);
            for &id in &cands {
                hits += prepared[id].matches(d) as usize;
            }
        }
        hits
    };
    run_pre(&docs[..docs.len().min(10)]); // warmup
    let start = Instant::now();
    let pre_hits = run_pre(&docs);
    let pre_us = start.elapsed().as_secs_f64() * 1e6 / writes as f64;

    assert_eq!(new_hits, black_box(pre_hits), "{shape}/q={q}: modes disagree on match count");
    Cell { shape, q, q_distinct, writes, new_us, pre_us }
}

/// log(t2/t1) / log(q2/q1): 1.0 = linear in Q, 0.0 = flat.
fn growth_exponent(q1: usize, t1: f64, q2: usize, t2: f64) -> f64 {
    if q2 > q1 && t1 > 0.0 && t2 > 0.0 {
        (t2 / t1).ln() / (q2 as f64 / q1 as f64).ln()
    } else {
        0.0
    }
}

fn main() {
    let scale = invalidb_bench::scale();
    let qs: Vec<usize> =
        [1_000usize, 10_000, 100_000].iter().map(|&q| ((q as f64 * scale) as usize).max(64)).collect();
    let shapes = ["unique_ranges", "shared_conjunctions", "duplicated_filters", "mixed"];

    table::banner("QSCALE", "per-write matching cost vs. active query count");
    let mut cells: Vec<Cell> = Vec::new();
    for shape in shapes {
        for &q in &qs {
            let cell = run_cell(shape, q);
            println!(
                "  {shape:>20} q={q:>7} distinct={:>6}  new={:>9.2} us/write  pre={:>9.2} us/write",
                cell.q_distinct, cell.new_us, cell.pre_us
            );
            cells.push(cell);
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.shape.to_owned(),
                c.q.to_string(),
                c.q_distinct.to_string(),
                c.writes.to_string(),
                format!("{:.2}", c.new_us),
                format!("{:.2}", c.pre_us),
                format!("{:.2}x", c.pre_us / c.new_us.max(1e-9)),
            ]
        })
        .collect();
    table::table(
        &["shape", "queries", "distinct", "writes", "new us/write", "pre us/write", "speedup"],
        &rows,
    );

    // Growth exponents between the two largest Q points per shape.
    let mut scaling_rows: Vec<Value> = Vec::new();
    println!();
    for shape in shapes {
        let pts: Vec<&Cell> = cells.iter().filter(|c| c.shape == shape).collect();
        let (a, b) = (pts[pts.len() - 2], pts[pts.len() - 1]);
        let exp_new = growth_exponent(a.q, a.new_us, b.q, b.new_us);
        let exp_pre = growth_exponent(a.q, a.pre_us, b.q, b.pre_us);
        println!(
            "  {shape:>20} growth {}k -> {}k: new x^{exp_new:.2}, pre x^{exp_pre:.2}",
            a.q / 1_000,
            b.q / 1_000
        );
        scaling_rows.push(Value::Object(doc! {
            "shape" => shape,
            "q_lo" => a.q as i64,
            "q_hi" => b.q as i64,
            "exponent_new" => exp_new,
            "exponent_prepr" => exp_pre,
        }));
    }

    let top = cells.iter().filter(|c| c.shape == "mixed").last().unwrap();
    let improvement = top.pre_us / top.new_us.max(1e-9);
    println!();
    println!(
        "  headline: mixed shapes @ {} queries: {:.2} -> {:.2} us/write ({improvement:.2}x)",
        top.q, top.pre_us, top.new_us
    );

    let json_rows: Vec<Value> = cells
        .iter()
        .map(|c| {
            Value::Object(doc! {
                "shape" => c.shape,
                "q" => c.q as i64,
                "q_distinct" => c.q_distinct as i64,
                "writes" => c.writes as i64,
                "new_us_per_write" => c.new_us,
                "prepr_us_per_write" => c.pre_us,
            })
        })
        .collect();
    let mut out = Document::with_capacity(4);
    out.insert("scale".to_owned(), Value::Float(scale));
    out.insert("rows".to_owned(), Value::Array(json_rows));
    out.insert("scaling".to_owned(), Value::Array(scaling_rows));
    out.insert("improvement_at_100k_mixed".to_owned(), Value::Float(improvement));
    let json = invalidb_json::to_string(&out);
    match std::fs::write(invalidb_bench::artifact_path("BENCH_qscale.json"), &json) {
        Ok(()) => println!("\nwrote {}", invalidb_bench::artifact_path("BENCH_qscale.json").display()),
        Err(e) => eprintln!("\nfailed to write BENCH_qscale.json: {e}"),
    }
}
