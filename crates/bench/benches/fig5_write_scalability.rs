//! Figure 5 — Write scalability: sustainable write throughput by the number
//! of write partitions (1, 2, 4, 8, 16), serving 1 000 active real-time
//! queries, under different latency SLAs.
//!
//! Paper reference points: a single write partition sustains roughly
//! 1.6 k ops/s; 16 write partitions reach ≈26 000 ops/s — slightly
//! sublinear relative to the read side because of per-write
//! (de)serialization overhead (§6.3), which the simulator models as a
//! constant per-write term at the matching nodes.

use invalidb_bench::table;
use invalidb_sim::{max_sustainable_writes, SimParams, SlaSearch};

fn main() {
    let scale = invalidb_bench::scale();
    table::banner("Figure 5", "Write scalability: sustainable ops/s vs. write partitions @ 1k queries");

    let slas = [20.0, 30.0, 50.0, 100.0];
    let partitions = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    let mut sla30_points = Vec::new();
    for wp in partitions {
        let mut row = vec![format!("{wp}")];
        for sla in slas {
            let search = SlaSearch { sla_p99_ms: sla, duration_s: 6.0 * scale };
            let base = SimParams::new(1, wp);
            let step = 250.0 * wp as f64;
            let cap = max_sustainable_writes(&base, &search, step, 2_500.0 * wp as f64 + 2_000.0);
            row.push(format!("{cap:.0}"));
            if sla == 30.0 {
                sla30_points.push((format!("{wp} WP"), cap));
            }
        }
        rows.push(row);
    }
    table::table(&["WP", "p99<=20ms", "p99<=30ms", "p99<=50ms", "p99<=100ms"], &rows);
    table::series("sustainable write throughput (p99 <= 30ms)", &sla30_points, "ops/s");

    let base = sla30_points[0].1.max(1.0);
    println!("\nscaling factors vs. 1 WP (paper: ~2x per doubling, 16 WP ~= 16x at ~26k ops/s):");
    for (label, cap) in &sla30_points {
        println!("  {label:>6}: {:.1}x", cap / base);
    }
    println!("\npaper reference (30ms SLA): 1 WP -> ~1.6k ops/s ... 16 WP -> ~26k ops/s");
}
