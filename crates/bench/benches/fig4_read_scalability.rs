//! Figure 4 — Read scalability: the number of serviceable real-time queries
//! by the number of query partitions (1, 2, 4, 8, 16) at a fixed write
//! throughput of 1 000 ops/s, under different latency SLAs.
//!
//! Paper reference points (p99 ≤ 30 ms): 1 QP ≈ 1 500 queries, 16 QP ≈
//! 29 000 queries — doubling the partitions doubles capacity.
//!
//! Runs on the calibrated discrete-event simulator (see DESIGN.md); the
//! `live_cluster` bench validates the same shape on the real cluster.

use invalidb_bench::table;
use invalidb_sim::{max_sustainable_queries, SimParams, SlaSearch};

fn main() {
    let scale = invalidb_bench::scale();
    table::banner("Figure 4", "Read scalability: sustainable queries vs. query partitions @ 1k ops/s");

    let slas = [20.0, 30.0, 50.0, 100.0];
    let partitions = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();
    let mut sla30_points = Vec::new();
    for qp in partitions {
        let mut row = vec![format!("{qp}")];
        for sla in slas {
            let search = SlaSearch { sla_p99_ms: sla, duration_s: 6.0 * scale };
            let base = SimParams::new(qp, 1);
            let cap = max_sustainable_queries(&base, &search, 500, 2_500 * qp as u64 + 2_000);
            row.push(format!("{cap}"));
            if sla == 30.0 {
                sla30_points.push((format!("{qp} QP"), cap as f64));
            }
        }
        rows.push(row);
    }
    table::table(&["QP", "p99<=20ms", "p99<=30ms", "p99<=50ms", "p99<=100ms"], &rows);
    table::series("sustainable queries (p99 <= 30ms)", &sla30_points, "queries");

    // Linearity check against the paper's claim.
    let base = sla30_points[0].1.max(1.0);
    println!("\nscaling factors vs. 1 QP (paper: ~2x per doubling; 16 QP ~= 19x):");
    for (label, cap) in &sla30_points {
        println!("  {label:>6}: {:.1}x", cap / base);
    }
    println!("\npaper reference (30ms SLA): 1 QP -> 1500 queries ... 16 QP -> 29000 queries");
}
