//! Wire-codec microbenchmark — encode/decode throughput of the JSON text
//! codec vs. the binary (`IVBD`) codec over representative envelope
//! shapes (a small after-image, a notification-sized document, and a
//! nested/stringy document), plus payload sizes.
//!
//! This isolates the pure (de)serialization cost the transport benchmark
//! pays per hop; §6.3 attributes the paper's slightly sublinear write
//! scalability to exactly this per-write overhead.

use invalidb_bench::table;
use invalidb_common::{doc, Document, Value};
use invalidb_json::WireCodec;
use std::time::Instant;

/// Builds the workload documents, largest last.
fn workloads() -> Vec<(&'static str, Document)> {
    let small = doc! {
        "op" => "write",
        "tenant" => "bench",
        "collection" => "pings",
        "key" => "k-000017",
        "version" => 17i64,
        "doc" => doc! { "n" => 17i64 },
        "written_at" => 1_700_000_000_000_000i64,
    };
    let medium = doc! {
        "type" => "notification",
        "tenant" => "bench",
        "subscription" => 4242i64,
        "kind" => "change",
        "match" => "add",
        "caused_by_write_at" => 1_700_000_000_000_000i64,
        "item" => doc! {
            "key" => "user-31337",
            "index" => 3i64,
            "doc" => doc! {
                "name" => "Ada Lovelace",
                "age" => 36i64,
                "score" => 98.25f64,
                "active" => true,
                "tags" => vec![Value::from("analyst"), Value::from("pioneer")],
            },
        },
    };
    let mut items = Vec::new();
    for i in 0..24i64 {
        items.push(Value::from(doc! {
            "key" => format!("item-{i:04}"),
            "index" => i,
            "doc" => doc! {
                "title" => format!("Result item number {i} with a medium-length title"),
                "rank" => (i as f64) * 0.5,
                "nested" => doc! { "depth" => doc! { "level" => i } },
            },
        }));
    }
    let large = doc! {
        "type" => "notification",
        "tenant" => "bench",
        "subscription" => 7i64,
        "kind" => "initial_result",
        "items" => items,
    };
    vec![
        ("small write (~100 B json)", small),
        ("change notification", medium),
        ("initial result (24 items)", large),
    ]
}

fn bench_codec(codec: WireCodec, doc: &Document, iters: usize) -> (f64, f64, usize) {
    // Warm-up + size probe.
    let payload = codec.encode(doc);
    let size = payload.len();

    let start = Instant::now();
    for _ in 0..iters {
        let p = codec.encode(doc);
        std::hint::black_box(&p);
    }
    let encode_ns = start.elapsed().as_nanos() as f64 / iters as f64;

    let start = Instant::now();
    for _ in 0..iters {
        let d = invalidb_json::payload_to_document(&payload).unwrap();
        std::hint::black_box(&d);
    }
    let decode_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (encode_ns, decode_ns, size)
}

fn main() {
    let iters = (20_000.0 * invalidb_bench::scale()).max(100.0) as usize;
    table::banner("Wire codec", "JSON text vs binary (IVBD): encode/decode cost per envelope");

    let mut rows = Vec::new();
    for (label, doc) in workloads() {
        let (json_enc, json_dec, json_size) = bench_codec(WireCodec::Json, &doc, iters);
        let (bin_enc, bin_dec, bin_size) = bench_codec(WireCodec::Binary, &doc, iters);
        rows.push(vec![
            label.to_string(),
            format!("{json_size}"),
            format!("{bin_size}"),
            format!("{json_enc:.0}"),
            format!("{bin_enc:.0}"),
            format!("{json_dec:.0}"),
            format!("{bin_dec:.0}"),
            format!("{:.1}x", (json_enc + json_dec) / (bin_enc + bin_dec)),
        ]);
    }
    table::table(
        &[
            "envelope",
            "json B",
            "bin B",
            "json enc ns",
            "bin enc ns",
            "json dec ns",
            "bin dec ns",
            "speedup",
        ],
        &rows,
    );
    println!("iters per cell: {iters} (scale with INVALIDB_BENCH_SCALE)");
}
