//! Ablation — slack size vs. query-renewal frequency (§5.2).
//!
//! The slack (items maintained beyond the limit) determines how many
//! successive removals a sorted query can absorb before a maintenance
//! error forces a renewal against the database. The paper controls renewal
//! load with a poll-frequency rate limit and suggests adapting the slack on
//! re-execution (§5.2 fn. 5). This ablation churns a top-10 query with
//! delete-heavy workloads under different slack values and reports the
//! renewal rate and window footprint.

use invalidb_bench::table;
use invalidb_common::{doc, Key, QuerySpec, ResultItem, SortDirection};
use invalidb_core::window::SortedWindow;
use invalidb_query::{MongoQueryEngine, QueryEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: usize = 20_000;
const LIMIT: u64 = 10;
const LIVE_KEYS: i64 = 400;

fn main() {
    table::banner("Ablation", "Slack vs. renewal frequency (top-10 query, delete-heavy churn)");
    let mut rows = Vec::new();
    for slack in [0u64, 1, 2, 3, 5, 10, 20, 50] {
        let (renewals, db_reads) = churn(slack);
        rows.push(vec![
            format!("{slack}"),
            format!("{}", LIMIT + slack),
            format!("{renewals}"),
            format!("{:.2}", renewals as f64 * 1_000.0 / OPS as f64),
            format!("{db_reads}"),
        ]);
    }
    table::table(
        &["slack", "window size", "renewals", "renewals per 1k ops", "bootstrap rows fetched"],
        &rows,
    );
    println!("expectation: renewals drop sharply with slack; memory grows linearly —");
    println!("the paper picks small slacks plus a poll-frequency rate limit (§5.2)");
}

/// Simulated database: the authoritative set of live documents.
struct Db {
    docs: std::collections::BTreeMap<i64, (u64, i64)>, // key -> (version, score)
    reads: u64,
}

impl Db {
    fn top(&mut self, n: usize) -> Vec<ResultItem> {
        let mut items: Vec<(i64, u64, i64)> = self.docs.iter().map(|(k, (v, s))| (*k, *v, *s)).collect();
        items.sort_by_key(|(k, _, s)| (std::cmp::Reverse(*s), *k));
        items.truncate(n);
        self.reads += items.len() as u64;
        items
            .into_iter()
            .map(|(k, v, s)| ResultItem::new(Key::of(k), v, doc! { "score" => s }))
            .collect()
    }
}

fn churn(slack: u64) -> (u64, u64) {
    let spec =
        QuerySpec::filter("players", doc! {}).sorted_by("score", SortDirection::Desc).with_limit(LIMIT);
    let prepared = MongoQueryEngine.prepare(&spec).unwrap();
    let mut rng = StdRng::seed_from_u64(slack.wrapping_mul(0x9E37_79B9).wrapping_add(7));

    let mut db = Db { docs: std::collections::BTreeMap::new(), reads: 0 };
    for k in 0..LIVE_KEYS {
        db.docs.insert(k, (1, rng.gen_range(0..100_000i64)));
    }
    let initial = db.top((LIMIT + slack) as usize);
    let mut window = SortedWindow::new(prepared, slack, &initial);
    let mut client = window.snapshot_visible();

    let mut renewals = 0u64;
    for _ in 0..OPS {
        let key = rng.gen_range(0..LIVE_KEYS);
        // Delete-heavy churn: deletes erode the window, inserts refill it.
        let outcome = if rng.gen_bool(0.55) {
            let version = match db.docs.remove(&key) {
                Some((v, _)) => v + 1,
                None => continue,
            };
            db.docs.insert(-key - 1_000_000, (1, rng.gen_range(0..100_000i64))); // keep population stable
            window.apply(&Key::of(key), version, None)
        } else {
            let score = rng.gen_range(0..100_000i64);
            let entry = db.docs.entry(key).or_insert((0, score));
            entry.0 += 1;
            entry.1 = score;
            window.apply(&Key::of(key), entry.0, Some(&doc! { "score" => score }))
        };
        if outcome.error.is_some() {
            renewals += 1;
            let fresh = db.top((LIMIT + slack) as usize);
            let events = window.reseed(slack, &fresh, &client);
            invalidb_core::window::apply_events(&mut client, &events);
        } else {
            invalidb_core::window::apply_events(&mut client, &outcome.events);
        }
    }
    (renewals, db.reads)
}
