//! Table 2 — Direct comparison of collection-based real-time query
//! implementations: poll-and-diff (Meteor), log tailing (Meteor oplog /
//! RethinkDB / Parse) and InvaliDB.
//!
//! Functional capabilities (composition, ordering, limit, offset, lag-free
//! notifications) are *exercised live* against each provider on the same
//! store; the two scalability rows are architectural properties reported by
//! the providers (and demonstrated quantitatively by the `fig4`/`fig5`
//! sweeps and the `ablation_partitioning` bench).

use invalidb_baselines::{InvaliDbProvider, LogTailing, PollAndDiff, RealTimeProvider};
use invalidb_bench::table;
use invalidb_broker::Broker;
use invalidb_client::{AppServer, AppServerConfig, ClientEvent};
use invalidb_common::{doc, Document, Key, QuerySpec, SortDirection, Value};
use invalidb_core::{Cluster, ClusterConfig};
use invalidb_store::Store;
use std::sync::Arc;
use std::time::{Duration, Instant};

const POLL_INTERVAL: Duration = Duration::from_millis(400);

type Writer<'a> = &'a dyn Fn(Key, Document);

fn main() {
    table::banner("Table 2", "Capability matrix: poll-and-diff vs. log tailing vs. InvaliDB");

    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app = Arc::new(AppServer::start(
        "bench",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::default(),
    ));

    let poll = PollAndDiff::new(Arc::clone(&store), POLL_INTERVAL);
    let tail = LogTailing::new(Arc::clone(&store));
    let invalidb = InvaliDbProvider::new(Arc::clone(&app));

    let store_writer = {
        let store = Arc::clone(&store);
        move |key: Key, doc: Document| {
            store.save("caps", key, doc).expect("write");
        }
    };
    let app_writer = {
        let app = Arc::clone(&app);
        move |key: Key, doc: Document| {
            app.save("caps", key, doc).expect("write");
        }
    };

    let providers: Vec<(&dyn RealTimeProvider, Writer)> =
        vec![(&poll, &store_writer), (&tail, &store_writer), (&invalidb, &app_writer)];

    let mut rows: Vec<Vec<String>> = vec![
        vec!["scales with write TP".into()],
        vec!["scales with #queries".into()],
        vec!["lag-free notifications".into()],
        vec!["composition (AND/OR)".into()],
        vec!["ordering".into()],
        vec!["limit".into()],
        vec!["offset".into()],
    ];

    for (provider, writer) in &providers {
        println!("probing {} ...", provider.name());
        let caps = provider.capabilities();
        let lag = measure_lag(*provider, writer);
        let lag_free_measured = lag.map(|l| l < POLL_INTERVAL / 2).unwrap_or(false);
        let checks = [
            caps.scales_with_write_throughput,
            caps.scales_with_queries,
            lag_free_measured && caps.lag_free,
            probe(*provider, &composition_query(), writer),
            probe(*provider, &ordering_query(), writer),
            probe(*provider, &limit_query(), writer),
            probe(*provider, &offset_query(), writer),
        ];
        for (row, ok) in rows.iter_mut().zip(checks) {
            row.push(if ok { "yes".into() } else { "no".into() });
        }
        if let Some(lag) = lag {
            println!("  measured notification lag: {:.1} ms", lag.as_secs_f64() * 1_000.0);
        }
    }
    table::table(&["capability", "poll-and-diff", "log tailing", "InvaliDB"], &rows);
    println!("paper (Table 2): poll-and-diff lacks lag-free + query scaling; log tailing lacks");
    println!("write scaling + offset; InvaliDB provides all seven.");
    drop(providers);
    drop(invalidb);
    drop(app);
    cluster.shutdown();
}

/// Exercises a subscription end to end: subscribe, write a matching record,
/// require a change notification.
fn probe(provider: &dyn RealTimeProvider, spec: &QuerySpec, writer: Writer) -> bool {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut sub = match provider.subscribe(spec) {
        Ok(s) => s,
        Err(_) => return false,
    };
    match sub.next_event(Duration::from_secs(5)) {
        Some(ClientEvent::Initial(_)) => {}
        _ => return false,
    }
    // A record matching every probe query shape (a=1; sortable field s).
    // For the offset query (offset 1), two records are needed so one lands
    // inside the visible window.
    let id = NEXT.fetch_add(2, std::sync::atomic::Ordering::Relaxed) as i64;
    writer(Key::of(format!("p-{}-{id}", provider.name())), doc! { "a" => 1i64, "b" => 0i64, "s" => id });
    writer(
        Key::of(format!("p-{}-{}", provider.name(), id + 1)),
        doc! { "a" => 1i64, "b" => 0i64, "s" => id + 1 },
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match sub.next_event(Duration::from_millis(100)) {
            Some(ClientEvent::Change(_)) => return true,
            _ => continue,
        }
    }
    false
}

fn composition_query() -> QuerySpec {
    QuerySpec::filter(
        "caps",
        doc! { "$or" => vec![
            Value::Object(doc! { "a" => 1i64 }),
            Value::Object(doc! { "b" => 2i64 }),
        ]},
    )
}

fn ordering_query() -> QuerySpec {
    QuerySpec::filter("caps", doc! { "a" => 1i64 }).sorted_by("s", SortDirection::Asc)
}

fn limit_query() -> QuerySpec {
    QuerySpec::filter("caps", doc! { "a" => 1i64 }).sorted_by("s", SortDirection::Asc).with_limit(100)
}

fn offset_query() -> QuerySpec {
    QuerySpec::filter("caps", doc! { "a" => 1i64 })
        .sorted_by("s", SortDirection::Asc)
        .with_limit(100)
        .with_offset(1)
}

/// Measures write-to-notification lag with a plain filter query.
fn measure_lag(provider: &dyn RealTimeProvider, writer: Writer) -> Option<Duration> {
    let spec = QuerySpec::filter("caps", doc! { "lagprobe" => provider.name() });
    let mut sub = provider.subscribe(&spec).ok()?;
    sub.next_event(Duration::from_secs(5))?;
    let start = Instant::now();
    writer(Key::of(format!("lag-{}", provider.name())), doc! { "lagprobe" => provider.name() });
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Some(ClientEvent::Change(_)) = sub.next_event(Duration::from_millis(20)) {
            return Some(start.elapsed());
        }
    }
    None
}
