//! Validates the checked-in machine-readable bench artifacts.
//!
//! CI's bench-smoke step runs the transport benches at
//! `INVALIDB_BENCH_SCALE=0` and then this check: every `BENCH_*.json`
//! at the workspace root must exist, parse as a JSON document, and
//! carry the fields downstream tooling (per-PR perf-trajectory diffs)
//! relies on. Exits non-zero with a description on any violation.

use invalidb_common::{Document, Value};

fn load(name: &str) -> Document {
    let path = invalidb_bench::artifact_path(name);
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => fail(name, &format!("missing or unreadable ({e})")),
    };
    match invalidb_json::parse_document(&raw) {
        Ok(doc) => doc,
        Err(e) => fail(name, &format!("malformed JSON: {e:?}")),
    }
}

fn fail(name: &str, why: &str) -> ! {
    eprintln!("bench-check FAILED: {name}: {why}");
    std::process::exit(1)
}

fn require_rows(name: &str, doc: &Document, field: &str) {
    match doc.get(field) {
        Some(Value::Array(rows)) if !rows.is_empty() => {}
        Some(Value::Array(_)) => fail(name, &format!("`{field}` is empty")),
        _ => fail(name, &format!("`{field}` missing or not an array")),
    }
}

fn require_number(name: &str, row: &Document, field: &str, context: &str) {
    match row.get(field) {
        Some(Value::Float(_)) | Some(Value::Int(_)) => {}
        _ => fail(name, &format!("{context} lacks numeric `{field}`")),
    }
}

fn main() {
    let transport = load("BENCH_transport.json");
    require_rows("BENCH_transport.json", &transport, "rows");
    match transport.get("improvement_pct") {
        Some(Value::Float(_)) | Some(Value::Int(_)) => {}
        _ => fail("BENCH_transport.json", "`improvement_pct` missing or not a number"),
    }
    if let Some(Value::Array(rows)) = transport.get("rows") {
        let mut multiprocess = false;
        for (i, row) in rows.iter().enumerate() {
            let Value::Object(row) = row else {
                fail("BENCH_transport.json", &format!("row {i} is not an object"));
            };
            for field in ["label", "transport", "codec", "batched", "mean_us", "p99_us", "max_us"] {
                if row.get(field).is_none() {
                    fail("BENCH_transport.json", &format!("row {i} lacks `{field}`"));
                }
            }
            require_number("BENCH_transport.json", row, "max_batch", &format!("row {i}"));
            if row.get("transport").and_then(|v| v.as_str()) == Some("multiprocess") {
                multiprocess = true;
                if row.get("remote_worker").is_none() {
                    fail("BENCH_transport.json", &format!("row {i} lacks `remote_worker`"));
                }
            }
        }
        if !multiprocess {
            fail("BENCH_transport.json", "no `transport = multiprocess` row");
        }
    }

    // Topology batch-size sweep: the gain rows of the mini-batch matching
    // optimization. A max_batch=1 row must anchor the sweep — the
    // `batch_gain_pct` headline is quoted against it.
    require_rows("BENCH_transport.json", &transport, "batch_sweep");
    require_number("BENCH_transport.json", &transport, "batch_gain_pct", "document");
    if let Some(Value::Array(sweep)) = transport.get("batch_sweep") {
        let mut baseline = false;
        for (i, row) in sweep.iter().enumerate() {
            let Value::Object(row) = row else {
                fail("BENCH_transport.json", &format!("batch_sweep row {i} is not an object"));
            };
            for field in ["max_batch", "mean_us", "p99_us", "max_us"] {
                require_number("BENCH_transport.json", row, field, &format!("batch_sweep row {i}"));
            }
            if row.get("max_batch").and_then(|v| v.as_i64()) == Some(1) {
                baseline = true;
            }
        }
        if !baseline {
            fail("BENCH_transport.json", "batch_sweep lacks the `max_batch = 1` baseline row");
        }
    }

    let fig6 = load("BENCH_fig6.json");
    let fig6e = match fig6.get("fig6e") {
        Some(Value::Object(d)) => d,
        Some(_) => fail("BENCH_fig6.json", "`fig6e` is not an object"),
        None => fail("BENCH_fig6.json", "`fig6e` missing"),
    };
    require_number("BENCH_fig6.json", fig6e, "max_batch", "`fig6e`");
    require_rows("BENCH_fig6.json", fig6e, "stages");
    match fig6e.get("breakdowns") {
        Some(Value::Array(runs)) if !runs.is_empty() => {
            let mut baseline = false;
            for (i, run) in runs.iter().enumerate() {
                let Value::Object(run) = run else {
                    fail("BENCH_fig6.json", &format!("fig6e breakdown {i} is not an object"));
                };
                require_number("BENCH_fig6.json", run, "max_batch", &format!("fig6e breakdown {i}"));
                require_rows("BENCH_fig6.json", run, "stages");
                if let Some(Value::Array(stages)) = run.get("stages") {
                    for (j, stage) in stages.iter().enumerate() {
                        let Value::Object(stage) = stage else {
                            fail(
                                "BENCH_fig6.json",
                                &format!("fig6e breakdown {i} stage {j} is not an object"),
                            );
                        };
                        if stage.get("stage").and_then(|v| v.as_str()).is_none() {
                            fail(
                                "BENCH_fig6.json",
                                &format!("fig6e breakdown {i} stage {j} lacks `stage`"),
                            );
                        }
                        for field in ["count", "mean_us", "p50_us", "p99_us", "max_us"] {
                            require_number(
                                "BENCH_fig6.json",
                                stage,
                                field,
                                &format!("fig6e breakdown {i} stage {j}"),
                            );
                        }
                    }
                }
                if run.get("max_batch").and_then(|v| v.as_i64()) == Some(1) {
                    baseline = true;
                }
            }
            if !baseline {
                fail("BENCH_fig6.json", "fig6e breakdowns lack the `max_batch = 1` baseline run");
            }
        }
        Some(Value::Array(_)) => fail("BENCH_fig6.json", "`fig6e.breakdowns` is empty"),
        _ => fail("BENCH_fig6.json", "`fig6e.breakdowns` missing or not an array"),
    }

    // Q-scaling sweep: per-write matching cost vs. active query count, in
    // both index modes, plus the growth exponents the sublinearity claim in
    // EXPERIMENTS.md is quoted from.
    let qscale = load("BENCH_qscale.json");
    require_rows("BENCH_qscale.json", &qscale, "rows");
    require_number("BENCH_qscale.json", &qscale, "improvement_at_100k_mixed", "document");
    if let Some(Value::Array(rows)) = qscale.get("rows") {
        let mut shapes: Vec<&str> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let Value::Object(row) = row else {
                fail("BENCH_qscale.json", &format!("row {i} is not an object"));
            };
            match row.get("shape").and_then(|v| v.as_str()) {
                Some(s) => {
                    if !shapes.contains(&s) {
                        shapes.push(s);
                    }
                }
                None => fail("BENCH_qscale.json", &format!("row {i} lacks `shape`")),
            }
            for field in ["q", "q_distinct", "writes", "new_us_per_write", "prepr_us_per_write"] {
                require_number("BENCH_qscale.json", row, field, &format!("row {i}"));
            }
        }
        for shape in ["unique_ranges", "shared_conjunctions", "duplicated_filters", "mixed"] {
            if !shapes.contains(&shape) {
                fail("BENCH_qscale.json", &format!("no rows for shape `{shape}`"));
            }
        }
    }
    require_rows("BENCH_qscale.json", &qscale, "scaling");
    if let Some(Value::Array(rows)) = qscale.get("scaling") {
        for (i, row) in rows.iter().enumerate() {
            let Value::Object(row) = row else {
                fail("BENCH_qscale.json", &format!("scaling row {i} is not an object"));
            };
            if row.get("shape").and_then(|v| v.as_str()).is_none() {
                fail("BENCH_qscale.json", &format!("scaling row {i} lacks `shape`"));
            }
            for field in ["q_lo", "q_hi", "exponent_new", "exponent_prepr"] {
                require_number("BENCH_qscale.json", row, field, &format!("scaling row {i}"));
            }
        }
    }

    println!("bench-check OK: BENCH_transport.json, BENCH_fig6.json, BENCH_qscale.json");
}
