//! Validates the checked-in machine-readable bench artifacts.
//!
//! CI's bench-smoke step runs the transport benches at
//! `INVALIDB_BENCH_SCALE=0` and then this check: every `BENCH_*.json`
//! at the workspace root must exist, parse as a JSON document, and
//! carry the fields downstream tooling (per-PR perf-trajectory diffs)
//! relies on. Exits non-zero with a description on any violation.

use invalidb_common::{Document, Value};

fn load(name: &str) -> Document {
    let path = invalidb_bench::artifact_path(name);
    let raw = match std::fs::read_to_string(&path) {
        Ok(raw) => raw,
        Err(e) => fail(name, &format!("missing or unreadable ({e})")),
    };
    match invalidb_json::parse_document(&raw) {
        Ok(doc) => doc,
        Err(e) => fail(name, &format!("malformed JSON: {e:?}")),
    }
}

fn fail(name: &str, why: &str) -> ! {
    eprintln!("bench-check FAILED: {name}: {why}");
    std::process::exit(1)
}

fn require_rows(name: &str, doc: &Document, field: &str) {
    match doc.get(field) {
        Some(Value::Array(rows)) if !rows.is_empty() => {}
        Some(Value::Array(_)) => fail(name, &format!("`{field}` is empty")),
        _ => fail(name, &format!("`{field}` missing or not an array")),
    }
}

fn main() {
    let transport = load("BENCH_transport.json");
    require_rows("BENCH_transport.json", &transport, "rows");
    match transport.get("improvement_pct") {
        Some(Value::Float(_)) | Some(Value::Int(_)) => {}
        _ => fail("BENCH_transport.json", "`improvement_pct` missing or not a number"),
    }
    if let Some(Value::Array(rows)) = transport.get("rows") {
        let mut multiprocess = false;
        for (i, row) in rows.iter().enumerate() {
            let Value::Object(row) = row else {
                fail("BENCH_transport.json", &format!("row {i} is not an object"));
            };
            for field in ["label", "transport", "codec", "batched", "mean_us", "p99_us", "max_us"] {
                if row.get(field).is_none() {
                    fail("BENCH_transport.json", &format!("row {i} lacks `{field}`"));
                }
            }
            if row.get("transport").and_then(|v| v.as_str()) == Some("multiprocess") {
                multiprocess = true;
                if row.get("remote_worker").is_none() {
                    fail("BENCH_transport.json", &format!("row {i} lacks `remote_worker`"));
                }
            }
        }
        if !multiprocess {
            fail("BENCH_transport.json", "no `transport = multiprocess` row");
        }
    }

    let fig6 = load("BENCH_fig6.json");
    for field in ["fig6e"] {
        if fig6.get(field).is_none() {
            fail("BENCH_fig6.json", &format!("`{field}` missing"));
        }
    }

    println!("bench-check OK: BENCH_transport.json, BENCH_fig6.json");
}
