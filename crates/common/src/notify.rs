//! Change notifications delivered to subscribed clients.
//!
//! Every notification represents a transition of a query result from one
//! state to another (§5). The first notification for a subscription carries
//! the initial result; all subsequent ones are incremental updates tagged
//! with a [`MatchType`]. A maintenance-error notification doubles as a
//! *query renewal request* (§5.2).

use crate::document::Document;
use crate::id::{Key, SubscriptionId, TenantId};
use crate::query_spec::SpecError;
use crate::trace::TraceContext;
use crate::value::Value;
use crate::Version;
use std::fmt;

/// The exact kind of result change encoded in a change notification (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchType {
    /// New result member.
    Add,
    /// Result member was updated (position unchanged for sorted queries).
    Change,
    /// Sorted queries only: result member was updated and changed position.
    ChangeIndex,
    /// Item left the result.
    Remove,
}

impl MatchType {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            MatchType::Add => "add",
            MatchType::Change => "change",
            MatchType::ChangeIndex => "changeIndex",
            MatchType::Remove => "remove",
        }
    }

    /// Parses the wire name.
    pub fn parse_str(s: &str) -> Option<Self> {
        match s {
            "add" => Some(MatchType::Add),
            "change" => Some(MatchType::Change),
            "changeIndex" => Some(MatchType::ChangeIndex),
            "remove" => Some(MatchType::Remove),
            _ => None,
        }
    }
}

impl fmt::Display for MatchType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One member of a query result (initial results and change payloads).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultItem {
    /// Primary key of the record.
    pub key: Key,
    /// Record version the item reflects.
    pub version: Version,
    /// After-image of the record; `None` only for removes, where the record
    /// content is no longer relevant.
    pub doc: Option<Document>,
    /// Position within the result for sorted queries.
    pub index: Option<u64>,
}

impl ResultItem {
    /// Item with document content and no position.
    pub fn new(key: Key, version: Version, doc: Document) -> Self {
        Self { key, version, doc: Some(doc), index: None }
    }

    fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(4);
        d.insert("key", self.key.0.clone());
        d.insert("version", self.version as i64);
        match &self.doc {
            Some(doc) => d.insert("doc", doc.clone()),
            None => d.insert("doc", Value::Null),
        };
        if let Some(idx) = self.index {
            d.insert("index", idx as i64);
        }
        d
    }

    fn from_document(d: &Document) -> Result<Self, SpecError> {
        let key = Key(d.get("key").cloned().ok_or_else(|| decode_err("result item missing `key`"))?);
        let version =
            d.get("version")
                .and_then(Value::as_i64)
                .ok_or_else(|| decode_err("result item missing `version`"))? as Version;
        let doc = match d.get("doc") {
            Some(Value::Null) | None => None,
            Some(Value::Object(doc)) => Some(doc.clone()),
            Some(_) => return Err(decode_err("result item `doc` must be object or null")),
        };
        let index = d.get("index").and_then(Value::as_i64).map(|i| i as u64);
        Ok(Self { key, version, doc, index })
    }
}

/// One incremental change to a maintained query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeItem {
    /// The kind of result transition.
    pub match_type: MatchType,
    /// The affected record.
    pub item: ResultItem,
    /// Previous position within the result (sorted queries, moves/removes).
    pub old_index: Option<u64>,
}

/// Why a sorted query stopped being maintainable (§5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceError {
    /// Human-readable description, e.g. "slack exhausted".
    pub reason: String,
}

impl fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query maintenance error: {}", self.reason)
    }
}

/// Payload of a notification.
#[derive(Debug, Clone, PartialEq)]
pub enum NotificationKind {
    /// The complete result at subscription time — always the first message
    /// for any real-time query.
    InitialResult {
        /// Result members; for sorted queries, in result order with indices.
        items: Vec<ResultItem>,
    },
    /// Incremental result update.
    Change(ChangeItem),
    /// The query became unmaintainable and was deactivated; the application
    /// server should renew it by re-executing the rewritten query
    /// (rate-limited by the poll frequency limit).
    Error(MaintenanceError),
    /// Updated value of a real-time aggregate query (extension, §8.1).
    Aggregate {
        /// Current aggregate value (`Null` when no record matches and the
        /// aggregate has no identity, e.g. min/max/avg of an empty set).
        value: Value,
        /// Number of currently matching records.
        count: u64,
    },
}

/// A notification addressed to one subscription.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Owning tenant (application).
    pub tenant: TenantId,
    /// Target subscription.
    pub subscription: SubscriptionId,
    /// Payload.
    pub kind: NotificationKind,
    /// Microsecond timestamp (app-server clock domain) of the write that
    /// caused this notification; `0` when not applicable. Carried so the
    /// benchmark harness can measure end-to-end notification latency the
    /// way the paper does (time from before insert until notification).
    pub caused_by_write_at: u64,
    /// Stage trace inherited from the causing write when that write was
    /// sampled for tracing; `None` otherwise (the common case).
    pub trace: Option<TraceContext>,
}

impl Notification {
    /// Encodes the notification as a document for transport.
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(5);
        d.insert("tenant", self.tenant.0.clone());
        d.insert("subscription", self.subscription.0 as i64);
        d.insert("writeAt", self.caused_by_write_at as i64);
        match &self.kind {
            NotificationKind::InitialResult { items } => {
                d.insert("type", "initial");
                d.insert(
                    "items",
                    Value::Array(items.iter().map(|i| Value::Object(i.to_document())).collect()),
                );
            }
            NotificationKind::Change(change) => {
                d.insert("type", change.match_type.as_str());
                d.insert("item", change.item.to_document());
                if let Some(old) = change.old_index {
                    d.insert("oldIndex", old as i64);
                }
            }
            NotificationKind::Error(err) => {
                d.insert("type", "error");
                d.insert("error", err.reason.clone());
            }
            NotificationKind::Aggregate { value, count } => {
                d.insert("type", "aggregate");
                d.insert("value", value.clone());
                d.insert("count", *count as i64);
            }
        }
        if let Some(trace) = &self.trace {
            d.insert("trace", trace.to_document());
        }
        d
    }

    /// Decodes a notification from its document encoding.
    pub fn from_document(d: &Document) -> Result<Self, SpecError> {
        let tenant = TenantId(
            d.get("tenant")
                .and_then(Value::as_str)
                .ok_or_else(|| decode_err("missing `tenant`"))?
                .to_owned(),
        );
        let subscription = SubscriptionId(
            d.get("subscription")
                .and_then(Value::as_i64)
                .ok_or_else(|| decode_err("missing `subscription`"))? as u64,
        );
        let caused_by_write_at = d.get("writeAt").and_then(Value::as_i64).unwrap_or(0) as u64;
        let ty = d.get("type").and_then(Value::as_str).ok_or_else(|| decode_err("missing `type`"))?;
        let kind = match ty {
            "initial" => {
                let items = d
                    .get("items")
                    .and_then(Value::as_array)
                    .ok_or_else(|| decode_err("missing `items`"))?
                    .iter()
                    .map(|v| {
                        v.as_object()
                            .ok_or_else(|| decode_err("item must be object"))
                            .and_then(ResultItem::from_document)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                NotificationKind::InitialResult { items }
            }
            "error" => NotificationKind::Error(MaintenanceError {
                reason: d.get("error").and_then(Value::as_str).unwrap_or("unknown").to_owned(),
            }),
            "aggregate" => NotificationKind::Aggregate {
                value: d.get("value").cloned().unwrap_or(Value::Null),
                count: d.get("count").and_then(Value::as_i64).unwrap_or(0) as u64,
            },
            other => {
                let match_type = MatchType::parse_str(other)
                    .ok_or_else(|| decode_err("unknown notification type"))?;
                let item = d
                    .get("item")
                    .and_then(Value::as_object)
                    .ok_or_else(|| decode_err("missing `item`"))
                    .and_then(ResultItem::from_document)?;
                let old_index = d.get("oldIndex").and_then(Value::as_i64).map(|i| i as u64);
                NotificationKind::Change(ChangeItem { match_type, item, old_index })
            }
        };
        let trace = match d.get("trace").and_then(Value::as_object) {
            Some(td) => Some(TraceContext::from_document(td)?),
            None => None,
        };
        Ok(Self { tenant, subscription, kind, caused_by_write_at, trace })
    }
}

fn decode_err(msg: &str) -> SpecError {
    SpecError::new(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn item() -> ResultItem {
        ResultItem { key: Key::of("k1"), version: 3, doc: Some(doc! { "a" => 1i64 }), index: Some(2) }
    }

    #[test]
    fn match_type_names_roundtrip() {
        for mt in [MatchType::Add, MatchType::Change, MatchType::ChangeIndex, MatchType::Remove] {
            assert_eq!(MatchType::parse_str(mt.as_str()), Some(mt));
        }
        assert_eq!(MatchType::parse_str("nope"), None);
    }

    #[test]
    fn initial_result_roundtrip() {
        let n = Notification {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(42),
            kind: NotificationKind::InitialResult {
                items: vec![item(), ResultItem::new(Key::of(9i64), 1, doc! {})],
            },
            caused_by_write_at: 0,
            trace: None,
        };
        let back = Notification::from_document(&n.to_document()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn change_roundtrip() {
        let n = Notification {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(7),
            kind: NotificationKind::Change(ChangeItem {
                match_type: MatchType::ChangeIndex,
                item: item(),
                old_index: Some(5),
            }),
            caused_by_write_at: 123_456,
            trace: None,
        };
        let back = Notification::from_document(&n.to_document()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn remove_with_null_doc_roundtrip() {
        let n = Notification {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(7),
            kind: NotificationKind::Change(ChangeItem {
                match_type: MatchType::Remove,
                item: ResultItem { key: Key::of("gone"), version: 9, doc: None, index: None },
                old_index: Some(0),
            }),
            caused_by_write_at: 1,
            trace: None,
        };
        let back = Notification::from_document(&n.to_document()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn error_roundtrip() {
        let n = Notification {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(7),
            kind: NotificationKind::Error(MaintenanceError { reason: "slack exhausted".into() }),
            caused_by_write_at: 0,
            trace: None,
        };
        let back = Notification::from_document(&n.to_document()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn aggregate_roundtrip() {
        let n = Notification {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(3),
            kind: NotificationKind::Aggregate { value: Value::Float(4.5), count: 12 },
            caused_by_write_at: 9,
            trace: None,
        };
        let back = Notification::from_document(&n.to_document()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn traced_notification_roundtrip() {
        let mut trace = TraceContext { trace_id: 11, stamps: Vec::new() };
        trace.stamp_at(crate::trace::Stage::AppServer, 10);
        trace.stamp_at(crate::trace::Stage::Matching, 25);
        trace.stamp_at(crate::trace::Stage::Notifier, 40);
        let n = Notification {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(7),
            kind: NotificationKind::Change(ChangeItem {
                match_type: MatchType::Add,
                item: item(),
                old_index: None,
            }),
            caused_by_write_at: 10,
            trace: Some(trace),
        };
        let back = Notification::from_document(&n.to_document()).unwrap();
        assert_eq!(n, back);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Notification::from_document(&Document::new()).is_err());
        let d = doc! { "tenant" => "t", "subscription" => 1i64, "type" => "weird" };
        assert!(Notification::from_document(&d).is_err());
    }
}
