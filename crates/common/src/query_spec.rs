//! Wire-level query representation.
//!
//! The event layer and the partitioning scheme treat queries opaquely; only
//! the pluggable query engine (`invalidb-query`) parses the filter document.
//! `QuerySpec` is therefore the *transport* form of a query: a collection
//! name, a MongoDB-style filter document, an optional sort specification and
//! limit/offset clauses.

use crate::document::Document;
use crate::id::QueryHash;
use crate::partition::stable_hash64;
use crate::value::Value;
use std::fmt;

/// Sort direction for one sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDirection {
    /// Ascending (`1` in MongoDB syntax).
    Asc,
    /// Descending (`-1`).
    Desc,
}

impl SortDirection {
    /// Numeric wire encoding.
    pub fn as_i64(self) -> i64 {
        match self {
            SortDirection::Asc => 1,
            SortDirection::Desc => -1,
        }
    }

    /// Parses the numeric wire encoding.
    pub fn from_i64(v: i64) -> Option<Self> {
        match v {
            1 => Some(SortDirection::Asc),
            -1 => Some(SortDirection::Desc),
            _ => None,
        }
    }
}

/// Ordered list of `(field path, direction)` sort keys.
pub type SortSpec = Vec<(String, SortDirection)>;

/// Aggregation function for real-time aggregate queries (an *extension*
/// beyond the paper's production scope — §8.1 names aggregations as future
/// work to be added "through additional processing stages").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Number of matching records.
    Count,
    /// Sum of a numeric field over matching records.
    Sum,
    /// Arithmetic mean of a numeric field.
    Avg,
    /// Smallest value of a field (canonical order).
    Min,
    /// Largest value of a field (canonical order).
    Max,
}

impl AggregateOp {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            AggregateOp::Count => "count",
            AggregateOp::Sum => "sum",
            AggregateOp::Avg => "avg",
            AggregateOp::Min => "min",
            AggregateOp::Max => "max",
        }
    }

    /// Parses the wire name.
    pub fn parse_str(s: &str) -> Option<Self> {
        match s {
            "count" => Some(AggregateOp::Count),
            "sum" => Some(AggregateOp::Sum),
            "avg" => Some(AggregateOp::Avg),
            "min" => Some(AggregateOp::Min),
            "max" => Some(AggregateOp::Max),
            _ => None,
        }
    }
}

/// A real-time aggregate over the matching set of a filter query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// The aggregation function.
    pub op: AggregateOp,
    /// Field the function applies to (`None` only for `Count`).
    pub field: Option<String>,
}

/// A collection-based query in wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Target collection.
    pub collection: String,
    /// MongoDB-style filter document (`{}` matches everything).
    pub filter: Document,
    /// Explicit ordering; empty for unsorted queries.
    pub sort: SortSpec,
    /// Maximum number of results, if bounded.
    pub limit: Option<u64>,
    /// Number of leading results to skip.
    pub offset: u64,
    /// Real-time aggregate over the matching set (extension, §8.1); mutually
    /// exclusive with sort/limit/offset.
    pub aggregate: Option<AggregateSpec>,
}

impl QuerySpec {
    /// Unsorted filter query over a collection.
    pub fn filter(collection: impl Into<String>, filter: Document) -> Self {
        Self {
            collection: collection.into(),
            filter,
            sort: Vec::new(),
            limit: None,
            offset: 0,
            aggregate: None,
        }
    }

    /// Turns the query into a real-time aggregate (builder style). Use
    /// `field: None` only with [`AggregateOp::Count`].
    pub fn aggregated(mut self, op: AggregateOp, field: Option<&str>) -> Self {
        self.aggregate = Some(AggregateSpec { op, field: field.map(str::to_owned) });
        self
    }

    /// Whether the query needs the aggregation stage (extension, §8.1).
    pub fn needs_aggregation_stage(&self) -> bool {
        self.aggregate.is_some()
    }

    /// Adds a sort key (builder style).
    pub fn sorted_by(mut self, field: impl Into<String>, dir: SortDirection) -> Self {
        self.sort.push((field.into(), dir));
        self
    }

    /// Sets the limit clause (builder style).
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the offset clause (builder style).
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Whether the query needs the sorting stage (§5.2): explicitly ordered
    /// queries and queries with limit or offset clauses; plain filter
    /// queries are self-maintainable within the filtering stage.
    pub fn needs_sorting_stage(&self) -> bool {
        !self.sort.is_empty() || self.limit.is_some() || self.offset > 0
    }

    /// Stable hash over the normalized query attributes (§5.1).
    ///
    /// Computed from the query itself — *not* the (random) subscription id —
    /// so all subscriptions to one query land on the same query partition,
    /// even when received by different application servers.
    pub fn stable_hash(&self) -> QueryHash {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(self.collection.as_bytes());
        bytes.push(0);
        Value::Object(self.filter.clone()).write_canonical(&mut bytes);
        for (field, dir) in &self.sort {
            bytes.extend_from_slice(field.as_bytes());
            bytes.push(match dir {
                SortDirection::Asc => 1,
                SortDirection::Desc => 2,
            });
        }
        bytes.extend_from_slice(&self.limit.unwrap_or(u64::MAX).to_be_bytes());
        bytes.extend_from_slice(&self.offset.to_be_bytes());
        if let Some(agg) = &self.aggregate {
            bytes.extend_from_slice(agg.op.as_str().as_bytes());
            if let Some(field) = &agg.field {
                bytes.extend_from_slice(field.as_bytes());
            }
        }
        QueryHash(stable_hash64(&bytes))
    }

    /// Rewrites the bootstrap query for sorted real-time maintenance
    /// (§5.2, "Sorted Filter Queries"): the offset clause is removed so the
    /// initial result contains the items *in* the offset, and the limit is
    /// extended by the offset and `slack` extra items beyond the limit.
    /// Unbounded queries are returned unchanged.
    pub fn rewrite_for_bootstrap(&self, slack: u64) -> QuerySpec {
        let mut q = self.clone();
        if let Some(limit) = self.limit {
            q.limit = Some(limit.saturating_add(self.offset).saturating_add(slack));
        }
        q.offset = 0;
        q
    }

    /// Encodes the spec as a document (for transport inside envelopes).
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(5);
        d.insert("collection", self.collection.clone());
        d.insert("filter", self.filter.clone());
        if !self.sort.is_empty() {
            let mut sort = Document::with_capacity(self.sort.len());
            for (field, dir) in &self.sort {
                sort.insert(field.clone(), dir.as_i64());
            }
            d.insert("sort", sort);
        }
        if let Some(limit) = self.limit {
            d.insert("limit", limit as i64);
        }
        if self.offset > 0 {
            d.insert("offset", self.offset as i64);
        }
        if let Some(agg) = &self.aggregate {
            let mut a = Document::with_capacity(2);
            a.insert("op", agg.op.as_str());
            if let Some(field) = &agg.field {
                a.insert("field", field.clone());
            }
            d.insert("aggregate", a);
        }
        d
    }

    /// Decodes a spec from its document encoding.
    pub fn from_document(d: &Document) -> Result<Self, SpecError> {
        let collection = d
            .get("collection")
            .and_then(Value::as_str)
            .ok_or(SpecError::new("missing `collection`"))?
            .to_owned();
        let filter = d
            .get("filter")
            .and_then(Value::as_object)
            .cloned()
            .ok_or(SpecError::new("missing `filter`"))?;
        let mut sort = Vec::new();
        if let Some(sort_doc) = d.get("sort") {
            let sort_doc = sort_doc.as_object().ok_or(SpecError::new("`sort` must be an object"))?;
            for (field, dir) in sort_doc.iter() {
                let dir = dir
                    .as_i64()
                    .and_then(SortDirection::from_i64)
                    .ok_or(SpecError::new("sort direction must be 1 or -1"))?;
                sort.push((field.to_owned(), dir));
            }
        }
        let limit = match d.get("limit") {
            None => None,
            Some(v) => Some(
                v.as_i64()
                    .filter(|l| *l >= 0)
                    .ok_or(SpecError::new("`limit` must be a non-negative integer"))?
                    as u64,
            ),
        };
        let offset = match d.get("offset") {
            None => 0,
            Some(v) => v
                .as_i64()
                .filter(|o| *o >= 0)
                .ok_or(SpecError::new("`offset` must be a non-negative integer"))?
                as u64,
        };
        let aggregate = match d.get("aggregate") {
            None => None,
            Some(v) => {
                let a = v.as_object().ok_or(SpecError::new("`aggregate` must be an object"))?;
                let op = a
                    .get("op")
                    .and_then(Value::as_str)
                    .and_then(AggregateOp::parse_str)
                    .ok_or(SpecError::new("unknown aggregate op"))?;
                let field = a.get("field").and_then(Value::as_str).map(str::to_owned);
                if field.is_none() && op != AggregateOp::Count {
                    return Err(SpecError::new("aggregate op requires a `field`"));
                }
                Some(AggregateSpec { op, field })
            }
        };
        Ok(Self { collection, filter, sort, limit, offset, aggregate })
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT * FROM {} WHERE {}", self.collection, self.filter)?;
        if !self.sort.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (field, dir)) in self.sort.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{field} {}", if *dir == SortDirection::Asc { "ASC" } else { "DESC" })?;
            }
        }
        if self.offset > 0 {
            write!(f, " OFFSET {}", self.offset)?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

/// Error decoding a [`QuerySpec`] from its wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid query spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    fn sample() -> QuerySpec {
        QuerySpec::filter("articles", doc! { "year" => doc! { "$gte" => 2016i64 } })
            .sorted_by("year", SortDirection::Desc)
            .with_limit(3)
            .with_offset(2)
    }

    #[test]
    fn roundtrip_through_document() {
        let q = sample();
        let d = q.to_document();
        let back = QuerySpec::from_document(&d).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn roundtrip_minimal() {
        let q = QuerySpec::filter("t", Document::new());
        let back = QuerySpec::from_document(&q.to_document()).unwrap();
        assert_eq!(q, back);
        assert!(!q.needs_sorting_stage());
    }

    #[test]
    fn hash_ignores_subscription_identity_but_not_attributes() {
        let a = sample();
        let b = sample();
        assert_eq!(a.stable_hash(), b.stable_hash());
        let c = sample().with_limit(4);
        assert_ne!(a.stable_hash(), c.stable_hash());
        let mut d = sample();
        d.collection = "other".into();
        assert_ne!(a.stable_hash(), d.stable_hash());
    }

    #[test]
    fn bootstrap_rewrite_extends_limit_and_zeroes_offset() {
        let q = sample(); // offset 2, limit 3
        let r = q.rewrite_for_bootstrap(3);
        assert_eq!(r.offset, 0);
        assert_eq!(r.limit, Some(3 + 2 + 3));
        assert_eq!(r.sort, q.sort);

        let unbounded = QuerySpec::filter("t", Document::new()).with_offset(5);
        let r = unbounded.rewrite_for_bootstrap(3);
        assert_eq!(r.offset, 0);
        assert_eq!(r.limit, None, "unbounded queries keep no limit");
    }

    #[test]
    fn needs_sorting_stage_detection() {
        assert!(!QuerySpec::filter("t", Document::new()).needs_sorting_stage());
        assert!(QuerySpec::filter("t", Document::new())
            .sorted_by("a", SortDirection::Asc)
            .needs_sorting_stage());
        assert!(QuerySpec::filter("t", Document::new()).with_limit(1).needs_sorting_stage());
        assert!(QuerySpec::filter("t", Document::new()).with_offset(1).needs_sorting_stage());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(QuerySpec::from_document(&Document::new()).is_err());
        let d = doc! { "collection" => "t", "filter" => doc! {}, "limit" => -1i64 };
        assert!(QuerySpec::from_document(&d).is_err());
        let d = doc! { "collection" => "t", "filter" => doc! {}, "sort" => doc! { "a" => 7i64 } };
        assert!(QuerySpec::from_document(&d).is_err());
    }

    #[test]
    fn sql_like_display() {
        let q = sample();
        assert_eq!(
            q.to_string(),
            "SELECT * FROM articles WHERE {year: {$gte: 2016}} ORDER BY year DESC OFFSET 2 LIMIT 3"
        );
    }
}
