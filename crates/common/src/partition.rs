//! Stable hashing and hash partitioning.
//!
//! InvaliDB performs hash partitioning for inbound writes and queries
//! (§5.1): after-images hash by primary key (the only attribute present on
//! insert, update *and* delete); queries hash by their normalized attributes
//! so all subscriptions to one query share a partition. The hash must be
//! stable across processes and runs — `std::hash` makes no such guarantee,
//! so we ship FNV-1a.

/// 64-bit FNV-1a hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// 64-bit finalizer (MurmurHash3's `fmix64`): full avalanche over FNV's
/// weakly mixed output, so partitioning by high bits stays uniform even for
/// short sequential keys.
pub fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Stable, well-mixed 64-bit hash of a byte string — FNV-1a plus finalizer.
/// This is the hash used for query and write partitioning.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    fmix64(fnv1a64(bytes))
}

/// Maps a stable hash onto one of `n` partitions.
///
/// Uses the high bits via 128-bit multiply (Lemire reduction) instead of
/// modulo: FNV's low bits are its weakest and modulo would expose them.
pub fn partition_of(hash: u64, n: usize) -> usize {
    assert!(n > 0, "partition count must be positive");
    (((hash as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Key;

    #[test]
    fn fnv_known_vectors() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn partition_in_range() {
        for n in [1usize, 2, 3, 7, 16] {
            for i in 0..1000u64 {
                let p = partition_of(fnv1a64(&i.to_be_bytes()), n);
                assert!(p < n);
            }
        }
    }

    #[test]
    fn partition_is_stable() {
        let k = Key::of("user:42");
        let p1 = partition_of(k.stable_hash(), 16);
        let p2 = partition_of(k.stable_hash(), 16);
        assert_eq!(p1, p2);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let n = 8usize;
        let mut counts = vec![0usize; n];
        let total = 80_000u64;
        for i in 0..total {
            let k = Key::of(format!("key-{i}"));
            counts[partition_of(k.stable_hash(), n)] += 1;
        }
        let expect = total as usize / n;
        for &c in &counts {
            // Within 5% of perfectly even for 80k keys over 8 partitions.
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 20) as u64,
                "skewed: {counts:?}"
            );
        }
    }
}
