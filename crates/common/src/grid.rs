//! The two-dimensional workload-partitioning grid (§5.1).
//!
//! A cluster with `QP` query partitions and `WP` write partitions deploys
//! `QP × WP` matching nodes. Node `(qp, wp)` is responsible for the
//! intersection of query partition `qp` and write partition `wp`:
//!
//! * a subscription whose query hashes to `qp` is **broadcast to the row**
//!   `{(qp, wp) | wp ∈ 0..WP}`, with its initial result split so each node
//!   receives only the slice belonging to its write partition;
//! * an after-image whose key hashes to `wp` is **broadcast to the column**
//!   `{(qp, wp) | qp ∈ 0..QP}`.
//!
//! Every node therefore holds a subset of queries and sees a fraction of the
//! write stream; adding rows scales the number of sustainable queries,
//! adding columns scales write throughput.

use crate::id::{Key, QueryHash};
use crate::partition::partition_of;

/// Shape of a matching grid: number of query and write partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Number of query partitions (rows).
    pub query_partitions: usize,
    /// Number of write partitions (columns).
    pub write_partitions: usize,
}

impl GridShape {
    /// Creates a grid shape; both dimensions must be ≥ 1.
    pub fn new(query_partitions: usize, write_partitions: usize) -> Self {
        assert!(query_partitions >= 1 && write_partitions >= 1, "grid dimensions must be >= 1");
        Self { query_partitions, write_partitions }
    }

    /// Total number of matching nodes.
    pub fn nodes(&self) -> usize {
        self.query_partitions * self.write_partitions
    }

    /// Query partition responsible for a query hash.
    pub fn query_partition(&self, q: QueryHash) -> usize {
        partition_of(q.0, self.query_partitions)
    }

    /// Write partition responsible for a primary key.
    pub fn write_partition(&self, key: &Key) -> usize {
        partition_of(key.stable_hash(), self.write_partitions)
    }

    /// Task index of the node at `(qp, wp)` (row-major layout).
    pub fn task_index(&self, coord: GridCoord) -> usize {
        debug_assert!(coord.qp < self.query_partitions && coord.wp < self.write_partitions);
        coord.qp * self.write_partitions + coord.wp
    }

    /// Inverse of [`GridShape::task_index`].
    pub fn coord_of(&self, task: usize) -> GridCoord {
        debug_assert!(task < self.nodes());
        GridCoord { qp: task / self.write_partitions, wp: task % self.write_partitions }
    }

    /// Task indices of the full row for a query partition (all nodes that
    /// must receive a subscription to a query in partition `qp`).
    pub fn row_tasks(&self, qp: usize) -> impl Iterator<Item = usize> + '_ {
        let wp_count = self.write_partitions;
        (0..wp_count).map(move |wp| qp * wp_count + wp)
    }

    /// Task indices of the full column for a write partition (all nodes that
    /// must receive an after-image in partition `wp`).
    pub fn column_tasks(&self, wp: usize) -> impl Iterator<Item = usize> + '_ {
        let wp_count = self.write_partitions;
        (0..self.query_partitions).map(move |qp| qp * wp_count + wp)
    }

    /// Tasks a subscription must reach, given its query hash.
    pub fn tasks_for_query(&self, q: QueryHash) -> Vec<usize> {
        self.row_tasks(self.query_partition(q)).collect()
    }

    /// Tasks an after-image must reach, given its primary key.
    pub fn tasks_for_key(&self, key: &Key) -> Vec<usize> {
        self.column_tasks(self.write_partition(key)).collect()
    }
}

/// Coordinate of one matching node in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridCoord {
    /// Query partition (row).
    pub qp: usize,
    /// Write partition (column).
    pub wp: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_index_roundtrip() {
        let g = GridShape::new(3, 4);
        for task in 0..g.nodes() {
            assert_eq!(g.task_index(g.coord_of(task)), task);
        }
    }

    #[test]
    fn rows_and_columns_intersect_in_exactly_one_node() {
        let g = GridShape::new(3, 4);
        for qp in 0..3 {
            for wp in 0..4 {
                let row: Vec<usize> = g.row_tasks(qp).collect();
                let col: Vec<usize> = g.column_tasks(wp).collect();
                let inter: Vec<&usize> = row.iter().filter(|t| col.contains(t)).collect();
                assert_eq!(inter.len(), 1);
                assert_eq!(*inter[0], g.task_index(GridCoord { qp, wp }));
            }
        }
    }

    #[test]
    fn every_query_meets_every_write_exactly_once() {
        // The fundamental guarantee of 2-D partitioning: for any (query,
        // write) pair there is exactly one matching node receiving both.
        let g = GridShape::new(4, 4);
        for qi in 0..50u64 {
            let q = QueryHash(crate::partition::fnv1a64(&qi.to_be_bytes()));
            let q_tasks = g.tasks_for_query(q);
            for ki in 0..50i64 {
                let k = Key::of(ki);
                let k_tasks = g.tasks_for_key(&k);
                let shared: Vec<&usize> = q_tasks.iter().filter(|t| k_tasks.contains(t)).collect();
                assert_eq!(shared.len(), 1, "query {q} x key {k}");
            }
        }
    }

    #[test]
    fn single_node_grid() {
        let g = GridShape::new(1, 1);
        assert_eq!(g.nodes(), 1);
        assert_eq!(g.tasks_for_key(&Key::of("x")), vec![0]);
        assert_eq!(g.tasks_for_query(QueryHash(123)), vec![0]);
    }

    #[test]
    #[should_panic(expected = "grid dimensions")]
    fn zero_dimension_rejected() {
        GridShape::new(0, 1);
    }
}
