//! Insertion-ordered document type.
//!
//! Documents preserve field insertion order (like BSON documents) because
//! object comparison and the canonical hash encoding are order-sensitive.
//! Lookups are linear scans over a small `Vec`; documents in this domain are
//! records with a handful of attributes, where a `Vec` beats hash maps both
//! in memory and speed.

use crate::value::Value;
use std::fmt;

/// An ordered mapping from field names to [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    entries: Vec<(String, Value)>,
}

impl Document {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Creates an empty document with capacity for `n` fields.
    pub fn with_capacity(n: usize) -> Self {
        Self { entries: Vec::with_capacity(n) }
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a top-level field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup of a top-level field.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if the field exists at top level.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces a field, returning the previous value if any.
    /// Replacement keeps the field's original position; a new field appends.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> Option<Value> {
        let key = key.into();
        let value = value.into();
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes a field, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Resolves a dotted path (`"a.b.c"`) through nested objects.
    ///
    /// This is the *plain* resolution used by sort keys and the store: it
    /// descends through objects only and additionally supports numeric path
    /// segments as array indices (`"tags.0"`). The query engine layers
    /// MongoDB's implicit array fan-out on top of this in `invalidb-query`.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut segments = path.split('.');
        let first = segments.next()?;
        let mut current = self.get(first)?;
        for seg in segments {
            current = match current {
                Value::Object(doc) => doc.get(seg)?,
                Value::Array(items) => {
                    let idx: usize = seg.parse().ok()?;
                    items.get(idx)?
                }
                _ => return None,
            };
        }
        Some(current)
    }

    /// Sets a dotted path, creating intermediate objects as needed.
    /// Returns the previous value at the path, if any. Fails (returns `Err`)
    /// when a non-object intermediate blocks the path.
    pub fn set_path(&mut self, path: &str, value: impl Into<Value>) -> Result<Option<Value>, PathError> {
        let segments: Vec<&str> = path.split('.').collect();
        set_path_inner(self, &segments, value.into())
    }

    /// Removes a dotted path, returning the removed value.
    pub fn remove_path(&mut self, path: &str) -> Option<Value> {
        let (head, tail) = match path.split_once('.') {
            Some((h, t)) => (h, Some(t)),
            None => (path, None),
        };
        match tail {
            None => self.remove(head),
            Some(rest) => match self.get_mut(head)? {
                Value::Object(doc) => doc.remove_path(rest),
                _ => None,
            },
        }
    }
}

/// Error when a `set_path` traversal hits a non-object value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// The path segment where traversal stopped.
    pub at: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot descend through non-object value at `{}`", self.at)
    }
}

impl std::error::Error for PathError {}

fn set_path_inner(
    doc: &mut Document,
    segments: &[&str],
    value: Value,
) -> Result<Option<Value>, PathError> {
    let (head, rest) = segments.split_first().expect("path has at least one segment");
    if rest.is_empty() {
        return Ok(doc.insert(*head, value));
    }
    if !doc.contains_key(head) {
        doc.insert(*head, Value::Object(Document::new()));
    }
    match doc.get_mut(head).expect("just inserted") {
        Value::Object(inner) => set_path_inner(inner, rest, value),
        _ => Err(PathError { at: (*head).to_owned() }),
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Value)> for Document {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut doc = Document::new();
        for (k, v) in iter {
            doc.insert(k, v);
        }
        doc
    }
}

impl IntoIterator for Document {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Convenience macro for building documents in tests and examples.
///
/// ```
/// use invalidb_common::{doc, Value};
/// let d = doc! { "name" => "ada", "age" => 36i64, "tags" => vec!["a", "b"] };
/// assert_eq!(d.get("age"), Some(&Value::Int(36)));
/// ```
#[macro_export]
macro_rules! doc {
    () => { $crate::Document::new() };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut d = $crate::Document::new();
        $( d.insert($k, $v); )+
        d
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_preserves_order_and_replaces_in_place() {
        let mut d = Document::new();
        d.insert("b", 1i64);
        d.insert("a", 2i64);
        d.insert("b", 3i64);
        let keys: Vec<_> = d.keys().collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(d.get("b"), Some(&Value::Int(3)));
    }

    #[test]
    fn dotted_path_resolution() {
        let d = doc! {
            "user" => doc! { "name" => "ada", "emails" => vec!["a@x", "b@x"] },
        };
        assert_eq!(d.get_path("user.name"), Some(&Value::String("ada".into())));
        assert_eq!(d.get_path("user.emails.1"), Some(&Value::String("b@x".into())));
        assert_eq!(d.get_path("user.emails.7"), None);
        assert_eq!(d.get_path("user.missing"), None);
        assert_eq!(d.get_path("missing.name"), None);
    }

    #[test]
    fn set_path_creates_intermediates() {
        let mut d = Document::new();
        d.set_path("a.b.c", 1i64).unwrap();
        assert_eq!(d.get_path("a.b.c"), Some(&Value::Int(1)));
        let prev = d.set_path("a.b.c", 2i64).unwrap();
        assert_eq!(prev, Some(Value::Int(1)));
    }

    #[test]
    fn set_path_rejects_non_object_intermediate() {
        let mut d = doc! { "a" => 5i64 };
        let err = d.set_path("a.b", 1i64).unwrap_err();
        assert_eq!(err.at, "a");
    }

    #[test]
    fn remove_path_nested() {
        let mut d = doc! { "a" => doc! { "b" => 1i64, "c" => 2i64 } };
        assert_eq!(d.remove_path("a.b"), Some(Value::Int(1)));
        assert_eq!(d.get_path("a.b"), None);
        assert_eq!(d.get_path("a.c"), Some(&Value::Int(2)));
        assert_eq!(d.remove_path("a.b"), None);
    }

    #[test]
    fn from_iterator_dedups_by_insert_semantics() {
        let d: Document =
            vec![("x".to_owned(), Value::Int(1)), ("x".to_owned(), Value::Int(2))].into_iter().collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get("x"), Some(&Value::Int(2)));
    }
}
