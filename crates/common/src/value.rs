//! The dynamically typed value model of the document store.
//!
//! Values follow the shape of JSON with a distinguished integer type, like
//! the aggregate-oriented document stores the paper targets. Cross-type
//! comparison uses a *canonical type ordering* modeled after MongoDB's sort
//! order so that the pluggable real-time query engine and the pull-based
//! store sort identically (paper §5.3: "both query engines have to produce
//! the same output, given the same input of queries and writes").

use crate::document::Document;
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed value stored in a [`Document`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Explicit null. Also used when a sort key is missing from a document.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    String(String),
    /// Ordered array of values.
    Array(Vec<Value>),
    /// Nested document.
    Object(Document),
}

impl Value {
    /// Canonical type rank used for cross-type ordering.
    ///
    /// Modeled after MongoDB's comparison order: Null < Numbers < String <
    /// Object < Array < Boolean. Int and Float share one numeric bracket.
    pub fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::String(_) => 2,
            Value::Object(_) => 3,
            Value::Array(_) => 4,
            Value::Bool(_) => 5,
        }
    }

    /// Human-readable type name (used in errors and `$type`-style matching).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// True if the value is numeric (int or float).
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric view as `f64`, if the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if the value is an `Int` or an integral `Float` that
    /// fits `i64` exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f < i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Nested document view.
    pub fn as_object(&self) -> Option<&Document> {
        match self {
            Value::Object(d) => Some(d),
            _ => None,
        }
    }

    /// Writes a canonical byte encoding of the value into `out`.
    ///
    /// The encoding is used for stable hashing (query/write partitioning)
    /// and guarantees that canonically *equal* values — notably
    /// `Int(1)` and `Float(1.0)` — produce identical bytes, so a primary key
    /// always routes to the same write partition regardless of the numeric
    /// representation chosen by a client.
    pub fn write_canonical(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0x00),
            Value::Bool(b) => {
                out.push(0x05);
                out.push(*b as u8);
            }
            Value::Int(i) => {
                // Integral numbers encode through their i64 value when
                // possible so Int(1) == Float(1.0) hash identically.
                out.push(0x01);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Float(f) => {
                if let Some(i) = self.as_i64() {
                    out.push(0x01);
                    out.extend_from_slice(&i.to_be_bytes());
                } else {
                    out.push(0x02);
                    let bits = if f.is_nan() { f64::NAN.to_bits() } else { f.to_bits() };
                    out.extend_from_slice(&bits.to_be_bytes());
                }
            }
            Value::String(s) => {
                out.push(0x03);
                out.extend_from_slice(&(s.len() as u64).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Array(items) => {
                out.push(0x04);
                out.extend_from_slice(&(items.len() as u64).to_be_bytes());
                for item in items {
                    item.write_canonical(out);
                }
            }
            Value::Object(doc) => {
                out.push(0x06);
                out.extend_from_slice(&(doc.len() as u64).to_be_bytes());
                for (k, v) in doc.iter() {
                    out.extend_from_slice(&(k.len() as u64).to_be_bytes());
                    out.extend_from_slice(k.as_bytes());
                    v.write_canonical(out);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(d) => write!(f, "{d}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Document> for Value {
    fn from(d: Document) -> Self {
        Value::Object(d)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

/// Total-order comparison across all value types.
///
/// Values of different type brackets compare by [`Value::type_rank`]. Within
/// the numeric bracket, `Int` and `Float` compare by numeric value (NaN sorts
/// below every other number and equal to itself, to preserve totality).
/// Arrays and objects compare lexicographically element by element.
pub fn canonical_cmp(a: &Value, b: &Value) -> Ordering {
    let (ra, rb) = (a.type_rank(), b.type_rank());
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (x, y) if x.is_number() && y.is_number() => cmp_numbers(x, y),
        (Value::Array(x), Value::Array(y)) => {
            for (xv, yv) in x.iter().zip(y.iter()) {
                let c = canonical_cmp(xv, yv);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                let c = xk.cmp(yk);
                if c != Ordering::Equal {
                    return c;
                }
                let c = canonical_cmp(xv, yv);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => unreachable!("same rank implies same bracket"),
    }
}

fn cmp_numbers(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) => cmp_i64_f64(*x, *y),
        (Value::Float(x), Value::Int(y)) => cmp_i64_f64(*y, *x).reverse(),
        (Value::Float(x), Value::Float(y)) => cmp_f64(*x, *y),
        _ => unreachable!(),
    }
}

fn cmp_f64(x: f64, y: f64) -> Ordering {
    match (x.is_nan(), y.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => x.partial_cmp(&y).expect("non-NaN floats are comparable"),
    }
}

/// Compares an i64 against an f64 without precision loss for large ints.
fn cmp_i64_f64(x: i64, y: f64) -> Ordering {
    if y.is_nan() {
        return Ordering::Greater;
    }
    if y == f64::INFINITY {
        return Ordering::Less;
    }
    if y == f64::NEG_INFINITY {
        return Ordering::Greater;
    }
    // For |y| beyond the exact-i64 range the float value decides.
    if y >= 9_223_372_036_854_775_808.0 {
        return Ordering::Less;
    }
    if y < -9_223_372_036_854_775_808.0 {
        return Ordering::Greater;
    }
    let yt = y.trunc();
    let yi = yt as i64;
    match x.cmp(&yi) {
        Ordering::Equal => {
            let frac = y - yt;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

/// Equality under [`canonical_cmp`] — in particular `Int(1)` equals
/// `Float(1.0)`, matching the query semantics of document stores.
pub fn canonical_eq(a: &Value, b: &Value) -> bool {
    canonical_cmp(a, b) == Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Document;

    #[test]
    fn type_brackets_order() {
        let vals = [
            Value::Null,
            Value::Int(5),
            Value::String("a".into()),
            Value::Object(Document::new()),
            Value::Array(vec![]),
            Value::Bool(false),
        ];
        for w in vals.windows(2) {
            assert_eq!(canonical_cmp(&w[0], &w[1]), Ordering::Less, "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn cross_numeric_equality() {
        assert!(canonical_eq(&Value::Int(1), &Value::Float(1.0)));
        assert!(!canonical_eq(&Value::Int(1), &Value::Float(1.5)));
        assert_eq!(canonical_cmp(&Value::Int(2), &Value::Float(1.5)), Ordering::Greater);
        assert_eq!(canonical_cmp(&Value::Float(1.5), &Value::Int(2)), Ordering::Less);
    }

    #[test]
    fn large_int_float_comparison_is_exact() {
        // 2^62 + 1 is not representable as f64; naive casting would claim equality.
        let big = (1i64 << 62) + 1;
        assert_eq!(
            canonical_cmp(&Value::Int(big), &Value::Float((1i64 << 62) as f64)),
            Ordering::Greater
        );
        assert_eq!(canonical_cmp(&Value::Int(i64::MAX), &Value::Float(f64::INFINITY)), Ordering::Less);
        assert_eq!(
            canonical_cmp(&Value::Int(i64::MIN), &Value::Float(f64::NEG_INFINITY)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(canonical_cmp(&nan, &nan), Ordering::Equal);
        assert_eq!(canonical_cmp(&nan, &Value::Float(-1e308)), Ordering::Less);
        assert_eq!(canonical_cmp(&nan, &Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(canonical_cmp(&Value::Null, &nan), Ordering::Less);
    }

    #[test]
    fn array_lexicographic() {
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 3]);
        let c = Value::from(vec![1i64, 2, 0]);
        assert_eq!(canonical_cmp(&a, &b), Ordering::Less);
        assert_eq!(canonical_cmp(&a, &c), Ordering::Less);
        assert_eq!(canonical_cmp(&b, &c), Ordering::Greater);
    }

    #[test]
    fn object_compares_by_entries() {
        let mut a = Document::new();
        a.insert("a", 1i64);
        let mut b = Document::new();
        b.insert("a", 2i64);
        assert_eq!(canonical_cmp(&Value::Object(a.clone()), &Value::Object(b)), Ordering::Less);
        let mut c = Document::new();
        c.insert("a", 1i64);
        c.insert("b", 0i64);
        assert_eq!(canonical_cmp(&Value::Object(a), &Value::Object(c)), Ordering::Less);
    }

    #[test]
    fn canonical_encoding_unifies_numeric_types() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Int(42).write_canonical(&mut a);
        Value::Float(42.0).write_canonical(&mut b);
        assert_eq!(a, b);
        let mut c = Vec::new();
        Value::Float(42.5).write_canonical(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn as_i64_respects_exactness() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Float(f64::NAN).as_i64(), None);
        assert_eq!(Value::Int(-7).as_i64(), Some(-7));
        assert_eq!(Value::String("3".into()).as_i64(), None);
    }

    #[test]
    fn display_formats() {
        let mut d = Document::new();
        d.insert("x", vec![Value::Int(1), Value::String("a".into())]);
        let v = Value::Object(d);
        assert_eq!(v.to_string(), "{x: [1, \"a\"]}");
    }
}
