//! Stage tracing for the notification pipeline.
//!
//! A [`TraceContext`] is a lightweight trace id plus an ordered list of
//! stage timestamps. It rides inside the message envelopes (`ClusterMessage`
//! on the way in, `Notification` on the way out) so a single write can be
//! followed app-server → broker → ingestion → matching → sorting/aggregation
//! → delivery, and every notification can report a per-stage latency
//! breakdown. Tracing is sampled (typically 1-in-N writes) and the context
//! is `Option`-al everywhere, so the untraced fast path carries only a
//! `None` discriminant.
//!
//! All stamps use the wall clock (unix-epoch microseconds) because a trace
//! crosses process boundaries over the TCP transport; within one host this
//! is the common clock domain the existing `written_at` latency measurement
//! already relies on.

use crate::document::Document;
use crate::query_spec::SpecError;
use crate::value::Value;
use std::time::{SystemTime, UNIX_EPOCH};

/// A stage of the notification pipeline, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// The application server accepted the write and built the after-image.
    AppServer,
    /// The event layer accepted the publish (TCP transport only; the
    /// in-process broker is too cheap to stamp separately).
    Broker,
    /// A cluster ingestion node decoded the envelope off the event layer.
    Ingestion,
    /// A matching node evaluated the write against its query partition.
    Matching,
    /// A sorting task updated the maintained result.
    Sorting,
    /// An aggregation task folded the change into its running aggregate.
    Aggregation,
    /// The notifier serialized the notification onto the event layer.
    Notifier,
    /// The application server delivered the event to the subscriber.
    Delivery,
}

/// Every stage, in pipeline order. Useful for rendering breakdown tables.
pub const ALL_STAGES: [Stage; 8] = [
    Stage::AppServer,
    Stage::Broker,
    Stage::Ingestion,
    Stage::Matching,
    Stage::Sorting,
    Stage::Aggregation,
    Stage::Notifier,
    Stage::Delivery,
];

impl Stage {
    /// Stable wire name (also used as the metrics-key suffix).
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::AppServer => "appServer",
            Stage::Broker => "broker",
            Stage::Ingestion => "ingestion",
            Stage::Matching => "matching",
            Stage::Sorting => "sorting",
            Stage::Aggregation => "aggregation",
            Stage::Notifier => "notifier",
            Stage::Delivery => "delivery",
        }
    }

    /// Parses a wire name produced by [`Stage::as_str`].
    pub fn parse_str(s: &str) -> Option<Stage> {
        Some(match s {
            "appServer" => Stage::AppServer,
            "broker" => Stage::Broker,
            "ingestion" => Stage::Ingestion,
            "matching" => Stage::Matching,
            "sorting" => Stage::Sorting,
            "aggregation" => Stage::Aggregation,
            "notifier" => Stage::Notifier,
            "delivery" => Stage::Delivery,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timestamped pipeline hop inside a [`TraceContext`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStamp {
    /// Which stage took the stamp.
    pub stage: Stage,
    /// Unix-epoch microseconds at the time of the stamp.
    pub at_micros: u64,
    /// Name of the worker process that took the stamp, when the stage ran
    /// inside a cluster worker (`None` for in-process and legacy stamps).
    pub worker: Option<String>,
    /// Assignment epoch the worker was serving when it stamped, so a trace
    /// that straddles a failover shows which epoch matched the write.
    pub epoch: Option<u64>,
}

impl StageStamp {
    /// A plain stamp with no worker annotation.
    pub fn new(stage: Stage, at_micros: u64) -> StageStamp {
        StageStamp { stage, at_micros, worker: None, epoch: None }
    }
}

/// Hop deltas above this are treated as clock skew, not latency. A single
/// hop inside one pipeline taking a minute of wall-clock time means the
/// clocks disagree, not that the hop was slow.
pub const MAX_PLAUSIBLE_HOP_MICROS: u64 = 60_000_000;

/// A sampled end-to-end trace of one write through the pipeline.
///
/// Stamps are appended in processing order; [`TraceContext::breakdown`]
/// turns them into per-hop latencies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Correlates stamps across processes; assigned by the app server.
    pub trace_id: u64,
    /// Stage stamps in the order the pipeline appended them.
    pub stamps: Vec<StageStamp>,
}

/// Unix-epoch microseconds from the wall clock — the clock domain all
/// trace stamps (and `AfterImage::written_at`) share.
pub fn now_micros() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

impl TraceContext {
    /// Starts a trace, stamping [`Stage::AppServer`] at the current time.
    pub fn start(trace_id: u64) -> TraceContext {
        let mut t = TraceContext { trace_id, stamps: Vec::with_capacity(ALL_STAGES.len()) };
        t.stamp(Stage::AppServer);
        t
    }

    /// Appends a stamp for `stage` at the current wall-clock time.
    pub fn stamp(&mut self, stage: Stage) {
        self.stamp_at(stage, now_micros());
    }

    /// Appends a stamp for `stage` at an explicit time (tests, transports
    /// that captured the time earlier).
    pub fn stamp_at(&mut self, stage: Stage, at_micros: u64) {
        self.stamps.push(StageStamp::new(stage, at_micros));
    }

    /// Appends a stamp for `stage` annotated with the identity of the
    /// cluster worker (and the assignment epoch it was serving) that
    /// executed the stage. Used by `workerd`-hosted cells so a distributed
    /// trace shows *which* process matched the write.
    pub fn stamp_worker(&mut self, stage: Stage, worker: &str, epoch: u64) {
        self.stamps.push(StageStamp {
            stage,
            at_micros: now_micros(),
            worker: Some(worker.to_string()),
            epoch: Some(epoch),
        });
    }

    /// The first stamp carrying a worker annotation, if any.
    pub fn worker_stamp(&self) -> Option<&StageStamp> {
        self.stamps.iter().find(|s| s.worker.is_some())
    }

    /// The timestamp of the first stamp recorded for `stage`, if any.
    pub fn at(&self, stage: Stage) -> Option<u64> {
        self.stamps.iter().find(|s| s.stage == stage).map(|s| s.at_micros)
    }

    /// Total microseconds between the first and last stamp.
    pub fn elapsed_micros(&self) -> u64 {
        match (self.stamps.first(), self.stamps.last()) {
            (Some(first), Some(last)) => last.at_micros.saturating_sub(first.at_micros),
            _ => 0,
        }
    }

    /// Per-hop latency: for each consecutive pair of stamps, the source
    /// stage, destination stage, and microseconds between them.
    pub fn breakdown(&self) -> Vec<(Stage, Stage, u64)> {
        self.stamps
            .windows(2)
            .map(|w| (w[0].stage, w[1].stage, w[1].at_micros.saturating_sub(w[0].at_micros)))
            .collect()
    }

    /// Per-hop *signed* latency. Consecutive stamps may come from different
    /// hosts whose clocks disagree, so a hop can legitimately compute as
    /// negative; unlike [`TraceContext::breakdown`] (which saturates to
    /// zero), this preserves the sign so consumers can count skewed hops
    /// instead of folding them into the stage tables as zero-latency hops.
    pub fn hops(&self) -> Vec<(Stage, Stage, i64)> {
        self.stamps
            .windows(2)
            .map(|w| (w[0].stage, w[1].stage, w[1].at_micros as i64 - w[0].at_micros as i64))
            .collect()
    }

    /// Encodes the trace for the event layer.
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(2);
        d.insert("id", self.trace_id as i64);
        d.insert(
            "stamps",
            Value::Array(
                self.stamps
                    .iter()
                    .map(|s| {
                        let mut sd = Document::with_capacity(4);
                        sd.insert("s", s.stage.as_str());
                        sd.insert("t", s.at_micros as i64);
                        // Worker annotations are optional keys so legacy
                        // decoders (and unannotated stamps) stay compact.
                        if let Some(worker) = &s.worker {
                            sd.insert("w", worker.as_str());
                        }
                        if let Some(epoch) = s.epoch {
                            sd.insert("e", epoch as i64);
                        }
                        Value::Object(sd)
                    })
                    .collect(),
            ),
        );
        d
    }

    /// Decodes a trace from its document encoding.
    pub fn from_document(d: &Document) -> Result<TraceContext, SpecError> {
        let trace_id =
            d.get("id").and_then(Value::as_i64).ok_or_else(|| SpecError::new("trace missing `id`"))?
                as u64;
        let stamps = d
            .get("stamps")
            .and_then(Value::as_array)
            .ok_or_else(|| SpecError::new("trace missing `stamps`"))?
            .iter()
            .map(|v| {
                let sd = v.as_object().ok_or_else(|| SpecError::new("stamp must be object"))?;
                let stage = sd
                    .get("s")
                    .and_then(Value::as_str)
                    .and_then(Stage::parse_str)
                    .ok_or_else(|| SpecError::new("stamp missing `s`"))?;
                let at_micros =
                    sd.get("t")
                        .and_then(Value::as_i64)
                        .ok_or_else(|| SpecError::new("stamp missing `t`"))? as u64;
                let worker = sd.get("w").and_then(Value::as_str).map(str::to_string);
                let epoch = sd.get("e").and_then(Value::as_i64).map(|e| e as u64);
                Ok(StageStamp { stage, at_micros, worker, epoch })
            })
            .collect::<Result<Vec<_>, SpecError>>()?;
        Ok(TraceContext { trace_id, stamps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_roundtrip() {
        for stage in ALL_STAGES {
            assert_eq!(Stage::parse_str(stage.as_str()), Some(stage));
        }
        assert_eq!(Stage::parse_str("warp-drive"), None);
    }

    #[test]
    fn document_roundtrip() {
        let mut t = TraceContext { trace_id: 42, stamps: Vec::new() };
        t.stamp_at(Stage::AppServer, 100);
        t.stamp_at(Stage::Ingestion, 140);
        t.stamp_at(Stage::Matching, 190);
        t.stamp_at(Stage::Delivery, 400);
        let decoded = TraceContext::from_document(&t.to_document()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn breakdown_and_elapsed() {
        let mut t = TraceContext { trace_id: 1, stamps: Vec::new() };
        t.stamp_at(Stage::AppServer, 1_000);
        t.stamp_at(Stage::Ingestion, 1_030);
        t.stamp_at(Stage::Matching, 1_100);
        assert_eq!(t.elapsed_micros(), 100);
        assert_eq!(
            t.breakdown(),
            vec![(Stage::AppServer, Stage::Ingestion, 30), (Stage::Ingestion, Stage::Matching, 70)]
        );
        // Per-hop deltas always sum to the end-to-end elapsed time.
        let sum: u64 = t.breakdown().iter().map(|(_, _, d)| d).sum();
        assert_eq!(sum, t.elapsed_micros());
    }

    #[test]
    fn start_stamps_app_server() {
        let t = TraceContext::start(7);
        assert_eq!(t.trace_id, 7);
        assert_eq!(t.stamps.len(), 1);
        assert_eq!(t.stamps[0].stage, Stage::AppServer);
        assert!(t.stamps[0].at_micros > 0);
    }

    #[test]
    fn worker_annotations_roundtrip() {
        let mut t = TraceContext { trace_id: 9, stamps: Vec::new() };
        t.stamp_at(Stage::AppServer, 100);
        t.stamps.push(StageStamp {
            stage: Stage::Matching,
            at_micros: 150,
            worker: Some("w1".into()),
            epoch: Some(3),
        });
        let decoded = TraceContext::from_document(&t.to_document()).unwrap();
        assert_eq!(decoded, t);
        let stamp = decoded.worker_stamp().expect("worker stamp survives the wire");
        assert_eq!(stamp.worker.as_deref(), Some("w1"));
        assert_eq!(stamp.epoch, Some(3));
        // Unannotated stamps stay unannotated.
        assert!(decoded.stamps[0].worker.is_none());
    }

    #[test]
    fn hops_preserve_negative_deltas() {
        let mut t = TraceContext { trace_id: 2, stamps: Vec::new() };
        t.stamp_at(Stage::AppServer, 1_000);
        t.stamp_at(Stage::Broker, 900); // remote clock running behind
        t.stamp_at(Stage::Delivery, 1_200);
        assert_eq!(t.hops()[0].2, -100);
        assert_eq!(t.hops()[1].2, 300);
        // breakdown() saturates — the skew is invisible there.
        assert_eq!(t.breakdown()[0].2, 0);
    }

    #[test]
    fn malformed_documents_rejected() {
        let d = Document::new();
        assert!(TraceContext::from_document(&d).is_err());
        let mut d = Document::new();
        d.insert("id", 1i64);
        assert!(TraceContext::from_document(&d).is_err());
    }
}
