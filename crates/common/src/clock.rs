//! Logical clock abstraction.
//!
//! Components that reason about time — write-stream retention expiry,
//! heartbeat intervals, TTLs, latency measurement — take a [`Clock`] so
//! tests and the discrete-event simulator can drive time deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point in time, in microseconds since an arbitrary per-process epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Microseconds since the clock's epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Timestamp advanced by a duration (saturating).
    pub fn after(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.as_micros() as u64))
    }

    /// Elapsed duration since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }
}

/// Source of the current time.
pub trait Clock: Send + Sync {
    /// Current time.
    fn now(&self) -> Timestamp;
}

/// Wall-clock implementation anchored at construction time.
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// New wall clock; `now()` counts from this call.
    pub fn new() -> Self {
        Self { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Manually advanced clock for tests and simulation.
#[derive(Debug, Clone, Default)]
pub struct MockClock {
    micros: Arc<AtomicU64>,
}

impl MockClock {
    /// New mock clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock.
    pub fn advance(&self, d: Duration) {
        self.micros.fetch_add(d.as_micros() as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time.
    pub fn set(&self, t: Timestamp) {
        self.micros.store(t.0, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_advances() {
        let c = MockClock::new();
        assert_eq!(c.now(), Timestamp(0));
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Timestamp(5_000));
        let clone = c.clone();
        clone.advance(Duration::from_micros(1));
        assert_eq!(c.now(), Timestamp(5_001), "clones share time");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(100);
        assert_eq!(t.after(Duration::from_micros(50)), Timestamp(150));
        assert_eq!(Timestamp(150).since(t), Duration::from_micros(50));
        assert_eq!(t.since(Timestamp(150)), Duration::ZERO, "saturates");
    }
}
