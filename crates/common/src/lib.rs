//! Shared foundations for the InvaliDB workspace.
//!
//! This crate hosts everything that more than one subsystem needs to agree
//! on: the document/value model of the (MongoDB-like) data store, stable
//! hashing and the two-dimensional partitioning grid, message envelopes
//! exchanged over the event layer, change-notification types, logical
//! clocks, and a latency histogram used by the benchmark harness.
//!
//! Layering: `invalidb-common` has no dependency on any other workspace
//! crate. Queries appear here only in *wire form* ([`QuerySpec`]): the event
//! layer and the workload-partitioning scheme treat queries as opaque
//! payloads plus a pre-computed [`QueryHash`]; parsing and evaluation live in
//! `invalidb-query` (the pluggable engine), exactly as in the paper's
//! database-agnostic design (§5.3).

pub mod clock;
pub mod config;
pub mod document;
pub mod grid;
pub mod hist;
pub mod id;
pub mod msg;
pub mod notify;
pub mod partition;
pub mod query_spec;
pub mod trace;
pub mod value;

pub use clock::{Clock, MockClock, SystemClock, Timestamp};
pub use config::ConfigError;
pub use document::Document;
pub use grid::{GridCoord, GridShape};
pub use hist::Histogram;
pub use id::{Key, QueryHash, SubscriptionId, TenantId};
pub use msg::{AfterImage, ClusterMessage, SubscriptionRequest};
pub use notify::{ChangeItem, MaintenanceError, MatchType, Notification, NotificationKind, ResultItem};
pub use partition::{fnv1a64, stable_hash64};
pub use query_spec::{AggregateOp, AggregateSpec, QuerySpec, SortDirection, SortSpec, SpecError};
pub use trace::{Stage, StageStamp, TraceContext, ALL_STAGES, MAX_PLAUSIBLE_HOP_MICROS};
pub use value::{canonical_cmp, canonical_eq, Value};

/// Version number of a stored record. The application server initializes
/// every record with version 1 and increments it on each write; a delete
/// produces a tombstone after-image carrying the next version. Matching
/// nodes use versions for staleness avoidance (§5.1).
pub type Version = u64;
