//! Log-linear latency histogram.
//!
//! The evaluation (§6) reports average, standard deviation, 99th percentile
//! and maximum of change-notification latency. This histogram records values
//! in microseconds into log-linear buckets (16 linear sub-buckets per power
//! of two), giving ≤ ~6% relative quantile error over a 1 µs – 100 s range
//! with a few KiB of memory — the same trade-off HdrHistogram makes.

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 16
const MAX_EXP: u32 = 37; // covers > 100 s in microseconds
const BUCKETS: usize = ((MAX_EXP as usize) + 1) * SUB_BUCKETS;

/// Fixed-memory histogram of `u64` samples (microseconds by convention).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], count: 0, sum: 0.0, sum_sq: 0.0, min: u64::MAX, max: 0 }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros(); // floor(log2(value)) >= 4
        let exp = exp.min(MAX_EXP);
        let shifted = (value >> (exp - SUB_BUCKET_BITS)) as usize & (SUB_BUCKETS - 1);
        (exp - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + shifted
    }

    /// Representative (upper-bound) value of a bucket.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let tier = (index / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
        let sub = (index % SUB_BUCKETS) as u64;
        let base = 1u64 << tier;
        let step = base >> SUB_BUCKET_BITS;
        base + sub * step + step - 1
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        let v = value as f64;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (exact, tracked outside the buckets) —
    /// the `_sum` series of the Prometheus histogram exposition.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (exact, tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Population standard deviation (exact).
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        let var = (self.sum_sq / self.count as f64 - mean * mean).max(0.0);
        var.sqrt()
    }

    /// Maximum recorded value (exact).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Minimum recorded value (exact).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Quantile estimate, `q` in `[0, 1]` (e.g. `0.99` for the p99).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.count = 0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Iterator over `(bucket_upper_bound, count)` for non-empty buckets —
    /// used to print the latency-distribution figures (Fig. 6c/6d).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (Self::bucket_value(i), c))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_us", &self.mean())
            .field("p99_us", &self.quantile(0.99))
            .field("max_us", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for &(q, expect) in &[(0.5, 50_000u64), (0.9, 90_000), (0.99, 99_000), (0.999, 99_900)] {
            let got = h.quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.07, "q={q}: got {got}, want ~{expect} (err {err:.3})");
        }
    }

    #[test]
    fn mean_and_stddev_exact() {
        let mut h = Histogram::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        assert!((h.mean() - 5.0).abs() < 1e-9);
        assert!((h.stddev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn huge_values_clamp_into_last_tier() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) > 0);
    }

    #[test]
    fn bucket_value_bounds_bucket_index() {
        for v in [0u64, 1, 15, 16, 17, 100, 1023, 1024, 123_456_789] {
            let idx = Histogram::bucket_index(v);
            let upper = Histogram::bucket_value(idx);
            assert!(upper >= v, "v={v} idx={idx} upper={upper}");
            // Relative error bound ~ 1/16.
            assert!((upper - v) as f64 <= (v as f64 / 16.0) + 1.0, "v={v} upper={upper}");
        }
    }
}
