//! Configuration validation shared by the builder APIs.
//!
//! Both `AppServerConfig::builder()` (crates/client) and
//! `ClusterConfig::builder()` (crates/core) validate their settings at
//! construction time and report inconsistencies through this one error
//! type, so the facade crate can surface a single configuration error
//! regardless of which layer rejected the settings.

/// A configuration rejected at construction time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Which setting (or pair of settings) was inconsistent.
    pub field: String,
    /// Human-readable explanation of the constraint that was violated.
    pub message: String,
}

impl ConfigError {
    /// Creates an error for `field` with the given explanation.
    pub fn new(field: impl Into<String>, message: impl Into<String>) -> ConfigError {
        ConfigError { field: field.into(), message: message.into() }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = ConfigError::new("slack", "must not exceed max_slack");
        assert_eq!(e.to_string(), "invalid config `slack`: must not exceed max_slack");
    }
}
