//! Messages flowing from application servers *into* the InvaliDB cluster.
//!
//! Everything crosses the event layer as an opaque payload; these types
//! define the envelope structure plus document encodings used on both ends.

use crate::document::Document;
use crate::id::{Key, QueryHash, SubscriptionId, TenantId};
use crate::notify::ResultItem;
use crate::query_spec::{QuerySpec, SpecError};
use crate::trace::TraceContext;
use crate::value::Value;
use crate::Version;

/// Fully specified representation of a written entity (§5): the complete
/// record state after an insert or update, or a tombstone (`doc: None`)
/// after a delete. The primary key is the only attribute guaranteed present
/// for all operation types, which is why write partitioning hashes it.
#[derive(Debug, Clone, PartialEq)]
pub struct AfterImage {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Collection the record lives in.
    pub collection: String,
    /// Primary key.
    pub key: Key,
    /// Monotonically increasing per-record version (staleness avoidance).
    pub version: Version,
    /// Post-write record state; `None` encodes a delete.
    pub doc: Option<Document>,
    /// Microsecond timestamp (app-server clock) taken right before the
    /// write was issued; used for end-to-end latency measurement.
    pub written_at: u64,
    /// Sampled stage trace; `None` for untraced writes (the common case).
    pub trace: Option<TraceContext>,
}

impl AfterImage {
    /// True if this after-image encodes a delete.
    pub fn is_delete(&self) -> bool {
        self.doc.is_none()
    }
}

/// A real-time query subscription request (§5.1).
///
/// Carries the query, its pre-computed stable hash, and the initial result
/// obtained from the pull-based database by executing the *rewritten*
/// bootstrap query. The cluster splits the initial result by write
/// partition so each matching node receives only its slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionRequest {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Client-generated unique subscription id.
    pub subscription: SubscriptionId,
    /// The original (un-rewritten) query.
    pub spec: QuerySpec,
    /// Stable hash of the normalized query attributes (query partitioning).
    pub query_hash: QueryHash,
    /// Initial result of the rewritten bootstrap query, in query order.
    pub initial: Vec<ResultItem>,
    /// Slack used in the bootstrap rewrite (items fetched beyond limit).
    pub slack: u64,
    /// Time-to-live in microseconds; the app server extends it periodically.
    pub ttl_micros: u64,
    /// `true` when this request re-registers a subscription that is already
    /// live at the client (failover replay, silent re-registration): the
    /// cluster restores matching state but suppresses the initial-result
    /// notification, so clients never see a stale result snapshot. Encoded
    /// as an optional field — requests from older peers decode as `false`.
    pub renewal: bool,
}

/// All message kinds the cluster ingests.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterMessage {
    /// Activate a real-time query.
    Subscribe(SubscriptionRequest),
    /// Deactivate a subscription. Carries the memoized query hash because
    /// it cannot be recomputed from a cancellation alone (§5.1, footnote 3).
    Unsubscribe {
        /// Owning tenant.
        tenant: TenantId,
        /// Subscription to cancel.
        subscription: SubscriptionId,
        /// Memoized query hash for partition routing.
        query_hash: QueryHash,
    },
    /// Extend the TTL of a still-active subscription.
    ExtendTtl {
        /// Owning tenant.
        tenant: TenantId,
        /// Subscription to keep alive.
        subscription: SubscriptionId,
        /// Memoized query hash for partition routing.
        query_hash: QueryHash,
        /// New TTL in microseconds from receipt.
        ttl_micros: u64,
    },
    /// An after-image of a database write.
    Write(AfterImage),
}

impl ClusterMessage {
    /// Encodes the message as a document for the event layer.
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(8);
        match self {
            ClusterMessage::Subscribe(req) => {
                d.insert("op", "subscribe");
                d.insert("tenant", req.tenant.0.clone());
                d.insert("subscription", req.subscription.0 as i64);
                d.insert("query", req.spec.to_document());
                d.insert("queryHash", req.query_hash.0 as i64);
                d.insert("slack", req.slack as i64);
                d.insert("ttl", req.ttl_micros as i64);
                if req.renewal {
                    d.insert("renewal", true);
                }
                d.insert(
                    "initial",
                    Value::Array(
                        req.initial.iter().map(|i| Value::Object(result_item_to_doc(i))).collect(),
                    ),
                );
            }
            ClusterMessage::Unsubscribe { tenant, subscription, query_hash } => {
                d.insert("op", "unsubscribe");
                d.insert("tenant", tenant.0.clone());
                d.insert("subscription", subscription.0 as i64);
                d.insert("queryHash", query_hash.0 as i64);
            }
            ClusterMessage::ExtendTtl { tenant, subscription, query_hash, ttl_micros } => {
                d.insert("op", "extendTtl");
                d.insert("tenant", tenant.0.clone());
                d.insert("subscription", subscription.0 as i64);
                d.insert("queryHash", query_hash.0 as i64);
                d.insert("ttl", *ttl_micros as i64);
            }
            ClusterMessage::Write(img) => {
                d.insert("op", "write");
                d.insert("tenant", img.tenant.0.clone());
                d.insert("collection", img.collection.clone());
                d.insert("key", img.key.0.clone());
                d.insert("version", img.version as i64);
                d.insert("writtenAt", img.written_at as i64);
                match &img.doc {
                    Some(doc) => d.insert("doc", doc.clone()),
                    None => d.insert("doc", Value::Null),
                };
                if let Some(trace) = &img.trace {
                    d.insert("trace", trace.to_document());
                }
            }
        }
        d
    }

    /// Decodes a message from its document encoding.
    pub fn from_document(d: &Document) -> Result<Self, SpecError> {
        let op = d.get("op").and_then(Value::as_str).ok_or_else(|| err("missing `op`"))?;
        let tenant = || -> Result<TenantId, SpecError> {
            Ok(TenantId(
                d.get("tenant")
                    .and_then(Value::as_str)
                    .ok_or_else(|| err("missing `tenant`"))?
                    .to_owned(),
            ))
        };
        let sub = || -> Result<SubscriptionId, SpecError> {
            Ok(SubscriptionId(
                d.get("subscription")
                    .and_then(Value::as_i64)
                    .ok_or_else(|| err("missing `subscription`"))? as u64,
            ))
        };
        let qhash = || -> Result<QueryHash, SpecError> {
            Ok(QueryHash(
                d.get("queryHash").and_then(Value::as_i64).ok_or_else(|| err("missing `queryHash`"))?
                    as u64,
            ))
        };
        match op {
            "subscribe" => {
                let spec_doc =
                    d.get("query").and_then(Value::as_object).ok_or_else(|| err("missing `query`"))?;
                let spec = QuerySpec::from_document(spec_doc)?;
                let initial = d
                    .get("initial")
                    .and_then(Value::as_array)
                    .ok_or_else(|| err("missing `initial`"))?
                    .iter()
                    .map(|v| {
                        v.as_object()
                            .ok_or_else(|| err("initial item must be object"))
                            .and_then(result_item_from_doc)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ClusterMessage::Subscribe(SubscriptionRequest {
                    tenant: tenant()?,
                    subscription: sub()?,
                    spec,
                    query_hash: qhash()?,
                    initial,
                    slack: d.get("slack").and_then(Value::as_i64).unwrap_or(0) as u64,
                    ttl_micros: d.get("ttl").and_then(Value::as_i64).unwrap_or(i64::MAX) as u64,
                    renewal: d.get("renewal").and_then(Value::as_bool).unwrap_or(false),
                }))
            }
            "unsubscribe" => Ok(ClusterMessage::Unsubscribe {
                tenant: tenant()?,
                subscription: sub()?,
                query_hash: qhash()?,
            }),
            "extendTtl" => Ok(ClusterMessage::ExtendTtl {
                tenant: tenant()?,
                subscription: sub()?,
                query_hash: qhash()?,
                ttl_micros: d.get("ttl").and_then(Value::as_i64).ok_or_else(|| err("missing `ttl`"))?
                    as u64,
            }),
            "write" => {
                let doc = match d.get("doc") {
                    Some(Value::Null) | None => None,
                    Some(Value::Object(doc)) => Some(doc.clone()),
                    Some(_) => return Err(err("`doc` must be object or null")),
                };
                Ok(ClusterMessage::Write(AfterImage {
                    tenant: tenant()?,
                    collection: d
                        .get("collection")
                        .and_then(Value::as_str)
                        .ok_or_else(|| err("missing `collection`"))?
                        .to_owned(),
                    key: Key(d.get("key").cloned().ok_or_else(|| err("missing `key`"))?),
                    version: d
                        .get("version")
                        .and_then(Value::as_i64)
                        .ok_or_else(|| err("missing `version`"))?
                        as Version,
                    doc,
                    written_at: d.get("writtenAt").and_then(Value::as_i64).unwrap_or(0) as u64,
                    trace: match d.get("trace").and_then(Value::as_object) {
                        Some(td) => Some(TraceContext::from_document(td)?),
                        None => None,
                    },
                }))
            }
            _ => Err(err("unknown `op`")),
        }
    }
}

fn result_item_to_doc(item: &ResultItem) -> Document {
    let mut d = Document::with_capacity(4);
    d.insert("key", item.key.0.clone());
    d.insert("version", item.version as i64);
    match &item.doc {
        Some(doc) => d.insert("doc", doc.clone()),
        None => d.insert("doc", Value::Null),
    };
    if let Some(idx) = item.index {
        d.insert("index", idx as i64);
    }
    d
}

fn result_item_from_doc(d: &Document) -> Result<ResultItem, SpecError> {
    let key = Key(d.get("key").cloned().ok_or_else(|| err("result item missing `key`"))?);
    let version =
        d.get("version").and_then(Value::as_i64).ok_or_else(|| err("result item missing `version`"))?
            as Version;
    let doc = match d.get("doc") {
        Some(Value::Null) | None => None,
        Some(Value::Object(doc)) => Some(doc.clone()),
        Some(_) => return Err(err("result item `doc` must be object or null")),
    };
    let index = d.get("index").and_then(Value::as_i64).map(|i| i as u64);
    Ok(ResultItem { key, version, doc, index })
}

fn err(msg: &str) -> SpecError {
    SpecError { message: msg.to_owned() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc;

    #[test]
    fn write_roundtrip() {
        let m = ClusterMessage::Write(AfterImage {
            tenant: TenantId::new("app"),
            collection: "users".into(),
            key: Key::of("u1"),
            version: 2,
            doc: Some(doc! { "name" => "ada" }),
            written_at: 777,
            trace: None,
        });
        assert_eq!(ClusterMessage::from_document(&m.to_document()).unwrap(), m);
    }

    #[test]
    fn traced_write_roundtrip() {
        let mut trace = crate::trace::TraceContext { trace_id: 9, stamps: Vec::new() };
        trace.stamp_at(crate::trace::Stage::AppServer, 500);
        trace.stamp_at(crate::trace::Stage::Ingestion, 540);
        let m = ClusterMessage::Write(AfterImage {
            tenant: TenantId::new("app"),
            collection: "users".into(),
            key: Key::of("u1"),
            version: 2,
            doc: Some(doc! { "name" => "ada" }),
            written_at: 500,
            trace: Some(trace),
        });
        assert_eq!(ClusterMessage::from_document(&m.to_document()).unwrap(), m);
    }

    #[test]
    fn delete_roundtrip() {
        let m = ClusterMessage::Write(AfterImage {
            tenant: TenantId::new("app"),
            collection: "users".into(),
            key: Key::of(5i64),
            version: 4,
            doc: None,
            written_at: 0,
            trace: None,
        });
        let decoded = ClusterMessage::from_document(&m.to_document()).unwrap();
        assert_eq!(decoded, m);
        if let ClusterMessage::Write(img) = decoded {
            assert!(img.is_delete());
        }
    }

    #[test]
    fn subscribe_roundtrip() {
        let spec = QuerySpec::filter("users", doc! { "age" => doc! { "$gte" => 18i64 } });
        let m = ClusterMessage::Subscribe(SubscriptionRequest {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(99),
            query_hash: spec.stable_hash(),
            spec,
            initial: vec![ResultItem::new(Key::of("u1"), 1, doc! { "age" => 30i64 })],
            slack: 3,
            ttl_micros: 60_000_000,
            renewal: false,
        });
        assert_eq!(ClusterMessage::from_document(&m.to_document()).unwrap(), m);
    }

    #[test]
    fn control_messages_roundtrip() {
        let unsub = ClusterMessage::Unsubscribe {
            tenant: TenantId::new("a"),
            subscription: SubscriptionId(1),
            query_hash: QueryHash(2),
        };
        assert_eq!(ClusterMessage::from_document(&unsub.to_document()).unwrap(), unsub);
        let ttl = ClusterMessage::ExtendTtl {
            tenant: TenantId::new("a"),
            subscription: SubscriptionId(1),
            query_hash: QueryHash(2),
            ttl_micros: 5,
        };
        assert_eq!(ClusterMessage::from_document(&ttl.to_document()).unwrap(), ttl);
    }

    #[test]
    fn unknown_op_rejected() {
        let d = doc! { "op" => "explode" };
        assert!(ClusterMessage::from_document(&d).is_err());
    }
}
