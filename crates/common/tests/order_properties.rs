//! Property tests for the canonical value order — the comparator both query
//! engines (pull and push) must agree on (§5.3). Violating totality or
//! transitivity here would corrupt sorted windows and index scans, so the
//! laws get their own proptest battery.

use invalidb_common::{canonical_cmp, canonical_eq, Document, Key, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float), // includes NaN and infinities
        "[a-c]{0,4}".prop_map(Value::String),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::vec(("[ab]", inner), 0..4)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect::<Document>())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn antisymmetry(a in value_strategy(), b in value_strategy()) {
        prop_assert_eq!(canonical_cmp(&a, &b), canonical_cmp(&b, &a).reverse());
    }

    #[test]
    fn reflexivity(a in value_strategy()) {
        prop_assert_eq!(canonical_cmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn transitivity(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        let mut vals = [a, b, c];
        // Sort by the comparator, then verify pairwise order holds — a
        // violation of transitivity surfaces as an unsorted result.
        vals.sort_by(canonical_cmp);
        prop_assert_ne!(canonical_cmp(&vals[0], &vals[1]), Ordering::Greater);
        prop_assert_ne!(canonical_cmp(&vals[1], &vals[2]), Ordering::Greater);
        prop_assert_ne!(canonical_cmp(&vals[0], &vals[2]), Ordering::Greater);
    }

    #[test]
    fn equal_values_encode_identically(a in value_strategy(), b in value_strategy()) {
        // Hash partitioning depends on it: canonical equality must imply
        // identical canonical encodings (so equal keys route identically).
        if canonical_eq(&a, &b) {
            let mut ba = Vec::new();
            let mut bb = Vec::new();
            a.write_canonical(&mut ba);
            b.write_canonical(&mut bb);
            prop_assert_eq!(ba, bb, "equal values {} and {} encode differently", a, b);
        }
    }

    #[test]
    fn key_hash_consistent_with_eq(a in value_strategy(), b in value_strategy()) {
        let (ka, kb) = (Key(a), Key(b));
        if ka == kb {
            prop_assert_eq!(ka.stable_hash(), kb.stable_hash());
        }
    }

    #[test]
    fn int_float_comparison_matches_exact_arithmetic(i in any::<i64>(), f in any::<f64>()) {
        // Compare against arbitrary-precision ground truth via i128/rational
        // reasoning: f = mantissa * 2^exp comparisons can be validated with
        // exact float→string? Simpler oracle: when |f| <= 2^52 the cast is
        // exact both ways.
        if f.is_finite() && f.abs() <= 4_503_599_627_370_496.0 {
            let expect = (i as f64).partial_cmp(&f);
            // (i as f64) is exact only when |i| <= 2^52 as well.
            // (unsigned_abs: `abs` overflows on i64::MIN, which proptest
            // generates as a boundary value.)
            if i.unsigned_abs() <= 4_503_599_627_370_496 {
                prop_assert_eq!(Some(canonical_cmp(&Value::Int(i), &Value::Float(f))), expect);
            }
        }
    }

    #[test]
    fn type_brackets_never_interleave(a in value_strategy(), b in value_strategy()) {
        if a.type_rank() < b.type_rank() {
            prop_assert_eq!(canonical_cmp(&a, &b), Ordering::Less);
        }
    }
}
