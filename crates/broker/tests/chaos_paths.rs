//! Targeted coverage for the broker's chaos machinery: the delay
//! scheduler's timing and ordering behaviour, and chaos scoping.
//!
//! (`lib.rs` has smoke tests for delivery completeness under chaos; these
//! pin down the *paths*: messages are actually held until due, variable
//! delays actually reorder, equal delays preserve publish order, and a
//! `TopicPrefix` scope leaves other topics untouched.)

use invalidb_broker::{Broker, Bytes, ChaosConfig, ChaosScope};
use std::time::{Duration, Instant};

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn delayed_delivery_is_actually_delayed() {
    let delay = Duration::from_millis(30);
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 1,
        delay: Some((delay, delay)),
        ..ChaosConfig::default()
    });
    let sub = broker.subscribe("t");
    let start = Instant::now();
    broker.publish("t", b("held"));
    assert_eq!(sub.try_recv(), None, "message must be held by the scheduler");
    let got = sub.recv_timeout(Duration::from_secs(5)).expect("eventually delivered");
    assert_eq!(got, b("held"));
    assert!(
        start.elapsed() >= delay - Duration::from_millis(2),
        "delivered after only {:?}, configured delay {delay:?}",
        start.elapsed()
    );
}

#[test]
fn variable_delays_reorder_messages() {
    // Wide per-message delay range: delivery order follows due times, not
    // publish order. With 50 messages over 0-20ms the chance all drawn
    // delays are monotonically non-decreasing is negligible, and with a
    // fixed seed the draw is deterministic anyway.
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 7,
        delay: Some((Duration::ZERO, Duration::from_millis(20))),
        ..ChaosConfig::default()
    });
    let sub = broker.subscribe("t");
    let n = 50;
    for i in 0..n {
        broker.publish("t", b(&format!("{i:03}")));
    }
    let mut got = Vec::new();
    for _ in 0..n {
        got.push(sub.recv_timeout(Duration::from_secs(5)).expect("delivered"));
    }
    let mut sorted = got.clone();
    sorted.sort();
    assert_eq!(got.len(), n, "everything arrives exactly once");
    assert_ne!(got, sorted, "variable delays must reorder delivery");
}

#[test]
fn equal_delays_preserve_publish_order() {
    // Same due time for everything: the scheduler's sequence-number
    // tiebreak keeps FIFO, so chaos with a constant delay degrades
    // latency but not ordering.
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 3,
        delay: Some((Duration::from_millis(5), Duration::from_millis(5))),
        ..ChaosConfig::default()
    });
    let sub = broker.subscribe("t");
    let n = 50;
    for i in 0..n {
        broker.publish("t", b(&format!("{i:03}")));
    }
    let mut got = Vec::new();
    for _ in 0..n {
        got.push(sub.recv_timeout(Duration::from_secs(5)).expect("delivered"));
    }
    let expected: Vec<Bytes> = (0..n).map(|i| b(&format!("{i:03}"))).collect();
    assert_eq!(got, expected, "constant delay must not reorder");
}

#[test]
fn topic_prefix_scope_spares_other_topics() {
    // The paper's model: writes into the cluster may be delayed/skewed,
    // while client notification channels (WebSocket-like) stay ordered
    // and immediate. Scope the chaos to the cluster-inbound topic only.
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 5,
        delay: Some((Duration::from_millis(50), Duration::from_millis(50))),
        drop_probability: 0.0,
        scope: ChaosScope::TopicPrefix("invalidb.cluster".into()),
    });
    let chaotic = broker.subscribe("invalidb.cluster");
    let clean = broker.subscribe("invalidb.notify.app");

    broker.publish("invalidb.cluster", b("slow"));
    broker.publish("invalidb.notify.app", b("fast"));

    assert_eq!(
        clean.recv_timeout(Duration::from_millis(100)).expect("unscoped topic is immediate"),
        b("fast")
    );
    assert_eq!(chaotic.try_recv(), None, "scoped topic is still held");
    assert_eq!(
        chaotic.recv_timeout(Duration::from_secs(5)).expect("scoped topic still delivers"),
        b("slow")
    );
}

#[test]
fn scoped_drops_do_not_leak_to_other_topics() {
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 9,
        drop_probability: 1.0,
        scope: ChaosScope::TopicPrefix("lossy.".into()),
        ..ChaosConfig::default()
    });
    let lossy = broker.subscribe("lossy.stream");
    let safe = broker.subscribe("safe.stream");
    for i in 0..20 {
        broker.publish("lossy.stream", b(&format!("l{i}")));
        broker.publish("safe.stream", b(&format!("s{i}")));
    }
    for i in 0..20 {
        assert_eq!(
            safe.recv_timeout(Duration::from_secs(1)).expect("safe topic delivers"),
            b(&format!("s{i}")),
            "safe topic delivers in order"
        );
    }
    assert_eq!(lossy.try_recv(), None, "drop_probability 1.0 drops everything in scope");
}

#[test]
fn unsubscribed_while_delayed_is_harmless() {
    // A message can be in flight in the scheduler when its subscriber
    // goes away; delivery to the dead channel must be swallowed, not
    // panic or wedge the scheduler thread.
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 11,
        delay: Some((Duration::from_millis(20), Duration::from_millis(20))),
        ..ChaosConfig::default()
    });
    let doomed = broker.subscribe("t");
    broker.publish("t", b("never-read"));
    drop(doomed);
    std::thread::sleep(Duration::from_millis(40));
    // Scheduler survives: a new subscription still works end-to-end.
    let sub = broker.subscribe("t");
    broker.publish("t", b("after"));
    assert_eq!(sub.recv_timeout(Duration::from_secs(5)).expect("scheduler alive"), b("after"));
}
