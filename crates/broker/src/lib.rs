//! The event layer (§5, §5.3).
//!
//! InvaliDB's real-time cluster can only be reached through an asynchronous
//! message broker carrying *entirely opaque payloads* — the paper's
//! production deployment uses Redis pub/sub. This crate provides the
//! in-process equivalent: named topics, fire-and-forget publishing, and
//! per-subscriber FIFO queues.
//!
//! Design points mirroring the paper:
//!
//! * **Opaque payloads.** The broker transports [`Bytes`]; routing never
//!   inspects content. (Partition routing happens in the cluster's stateless
//!   ingestion nodes, not here.)
//! * **No retention.** Like Redis pub/sub, messages published while nobody
//!   subscribes are dropped; durable replay is *not* an event-layer
//!   property — InvaliDB compensates with write-stream retention inside the
//!   matching nodes (§5.1).
//! * **Failure isolation.** If every consumer disappears (e.g. the cluster
//!   is taken down), publishes still succeed — "requests sent against the
//!   event layer remain unanswered" and the OLTP side keeps running.
//!
//! For testing the paper's two race conditions (write-query and
//! write-subscription, §5.1), the broker supports **chaos injection**:
//! random per-message delivery delays (which cause reordering) and drops.

mod chaos;

pub use chaos::{ChaosConfig, ChaosScope};
// Payloads are opaque `Bytes`; re-exported so downstream crates can publish
// without depending on the `bytes` crate themselves.
pub use bytes::Bytes;

use chaos::DelayScheduler;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Well-known topic carrying all messages *into* an InvaliDB cluster.
pub const CLUSTER_TOPIC: &str = "invalidb.cluster";

/// Well-known topic on which the cluster coordinator announces epoch
/// changes (worker failover / reassignment) to application servers.
pub const EPOCH_TOPIC: &str = "invalidb.cluster.epoch";

/// Topic carrying notifications for one tenant's application servers.
pub fn notify_topic(tenant: &str) -> String {
    format!("invalidb.notify.{tenant}")
}

/// Topic carrying staged (sorted/aggregate) partial results for one query
/// partition row: matching cells hosted on a worker that does *not* own
/// the row publish their `FilterChange`s here, and the row owner folds
/// them into its sorting/aggregation stages.
pub fn shuffle_topic(query_partition: usize) -> String {
    format!("invalidb.shuffle.q{query_partition}")
}

struct TopicState {
    subscribers: Vec<(u64, Sender<Bytes>)>,
}

struct BrokerInner {
    topics: RwLock<HashMap<String, TopicState>>,
    next_subscriber: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    chaos: Option<ChaosState>,
    scheduler: DelayScheduler,
}

struct ChaosState {
    config: ChaosConfig,
    rng: parking_lot::Mutex<StdRng>,
}

/// An asynchronous pub/sub message broker.
#[derive(Clone)]
pub struct Broker {
    inner: Arc<BrokerInner>,
}

impl Broker {
    /// A well-behaved broker (no chaos).
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A broker that delays/drops messages per `config` — used by tests to
    /// provoke the races the paper's retention scheme defends against.
    pub fn with_chaos(config: ChaosConfig) -> Self {
        Self::build(Some(config))
    }

    fn build(chaos: Option<ChaosConfig>) -> Self {
        let chaos = chaos.map(|config| ChaosState {
            rng: parking_lot::Mutex::new(StdRng::seed_from_u64(config.seed)),
            config,
        });
        Self {
            inner: Arc::new(BrokerInner {
                topics: RwLock::new(HashMap::new()),
                next_subscriber: AtomicU64::new(1),
                published: AtomicU64::new(0),
                delivered: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                chaos,
                scheduler: DelayScheduler::new(),
            }),
        }
    }

    /// Subscribes to a topic; messages published from now on are delivered
    /// in FIFO order (unless chaos delays reorder them).
    pub fn subscribe(&self, topic: &str) -> Subscription {
        let (tx, rx) = unbounded();
        let id = self.inner.next_subscriber.fetch_add(1, Ordering::Relaxed);
        let mut topics = self.inner.topics.write();
        topics
            .entry(topic.to_owned())
            .or_insert_with(|| TopicState { subscribers: Vec::new() })
            .subscribers
            .push((id, tx));
        Subscription { inner: Arc::clone(&self.inner), topic: topic.to_owned(), id, rx }
    }

    /// Publishes a payload to all current subscribers of a topic.
    /// Returns the number of subscribers the message was (scheduled to be)
    /// delivered to. Publishing to a topic without subscribers is not an
    /// error — the message simply vanishes, like Redis pub/sub.
    pub fn publish(&self, topic: &str, payload: Bytes) -> usize {
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        let topics = self.inner.topics.read();
        let state = match topics.get(topic) {
            Some(s) => s,
            None => return 0,
        };
        let mut count = 0;
        for (_, tx) in &state.subscribers {
            match self.plan_delivery(topic) {
                Delivery::Drop => {
                    self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                }
                Delivery::Now => {
                    if tx.send(payload.clone()).is_ok() {
                        self.inner.delivered.fetch_add(1, Ordering::Relaxed);
                        count += 1;
                    }
                }
                Delivery::Delayed(delay) => {
                    self.inner.scheduler.schedule(delay, tx.clone(), payload.clone());
                    self.inner.delivered.fetch_add(1, Ordering::Relaxed);
                    count += 1;
                }
            }
        }
        count
    }

    fn plan_delivery(&self, topic: &str) -> Delivery {
        let chaos = match &self.inner.chaos {
            None => return Delivery::Now,
            Some(c) => c,
        };
        if let chaos::ChaosScope::TopicPrefix(prefix) = &chaos.config.scope {
            if !topic.starts_with(prefix.as_str()) {
                return Delivery::Now;
            }
        }
        let mut rng = chaos.rng.lock();
        if chaos.config.drop_probability > 0.0 && rng.gen::<f64>() < chaos.config.drop_probability {
            return Delivery::Drop;
        }
        match chaos.config.delay {
            None => Delivery::Now,
            Some((min, max)) => {
                let span = max.saturating_sub(min);
                let extra = if span.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_micros(rng.gen_range(0..=span.as_micros() as u64))
                };
                Delivery::Delayed(min + extra)
            }
        }
    }

    /// Number of active subscribers on a topic.
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.inner.topics.read().get(topic).map(|s| s.subscribers.len()).unwrap_or(0)
    }

    /// `(published, delivered, dropped)` message counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.inner.published.load(Ordering::Relaxed),
            self.inner.delivered.load(Ordering::Relaxed),
            self.inner.dropped.load(Ordering::Relaxed),
        )
    }
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

/// The event-layer abstraction (§5): everything the cluster and the
/// application servers need from the message broker. The in-process
/// [`Broker`] implements it directly; `invalidb-net`'s `RemoteBroker`
/// implements it over TCP — both sides of the system are written against
/// [`BrokerHandle`] and never notice which transport is underneath.
pub trait EventLayer: Send + Sync {
    /// Publishes a payload to all current subscribers of a topic. Returns
    /// the number of *local* deliveries scheduled (remote transports may
    /// report 0 even though the server forwards further).
    fn publish(&self, topic: &str, payload: Bytes) -> usize;

    /// Subscribes to a topic with FIFO delivery from now on.
    fn subscribe(&self, topic: &str) -> Subscription;

    /// Number of active local subscribers on a topic.
    fn subscriber_count(&self, topic: &str) -> usize;

    /// Connection generation of this layer: `0` forever for transports
    /// that cannot lose messages between publisher and broker (the
    /// in-process [`Broker`]), incremented on every (re)established
    /// session for remote transports. Publishers that need at-least-once
    /// delivery across the at-most-once event layer (§5.3) watch this to
    /// learn that a gap may have opened — anything published while the
    /// previous generation was dying can be silently gone.
    fn generation(&self) -> u64 {
        0
    }
}

impl EventLayer for Broker {
    fn publish(&self, topic: &str, payload: Bytes) -> usize {
        Broker::publish(self, topic, payload)
    }

    fn subscribe(&self, topic: &str) -> Subscription {
        Broker::subscribe(self, topic)
    }

    fn subscriber_count(&self, topic: &str) -> usize {
        Broker::subscriber_count(self, topic)
    }
}

/// A cheaply cloneable, type-erased handle to an event layer.
///
/// `AppServer::start` and `Cluster::start` accept `impl Into<BrokerHandle>`,
/// so existing call sites passing a [`Broker`] compile unchanged while a
/// remote transport plugs in with the same one-liner.
#[derive(Clone)]
pub struct BrokerHandle {
    inner: Arc<dyn EventLayer>,
}

impl BrokerHandle {
    /// Wraps any event layer implementation.
    pub fn new(layer: impl EventLayer + 'static) -> Self {
        Self { inner: Arc::new(layer) }
    }

    /// See [`EventLayer::publish`].
    pub fn publish(&self, topic: &str, payload: Bytes) -> usize {
        self.inner.publish(topic, payload)
    }

    /// See [`EventLayer::subscribe`].
    pub fn subscribe(&self, topic: &str) -> Subscription {
        self.inner.subscribe(topic)
    }

    /// See [`EventLayer::subscriber_count`].
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.inner.subscriber_count(topic)
    }

    /// See [`EventLayer::generation`].
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }
}

impl std::fmt::Debug for BrokerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerHandle").finish_non_exhaustive()
    }
}

impl From<Broker> for BrokerHandle {
    fn from(broker: Broker) -> Self {
        Self::new(broker)
    }
}

impl From<Arc<dyn EventLayer>> for BrokerHandle {
    fn from(inner: Arc<dyn EventLayer>) -> Self {
        Self { inner }
    }
}

enum Delivery {
    Now,
    Delayed(Duration),
    Drop,
}

/// A live subscription. Dropping it unsubscribes.
pub struct Subscription {
    inner: Arc<BrokerInner>,
    topic: String,
    id: u64,
    rx: Receiver<Bytes>,
}

impl Subscription {
    /// Topic this subscription listens on.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Blocking receive.
    pub fn recv(&self) -> Option<Bytes> {
        self.rx.recv().ok()
    }

    /// Receive with timeout; `None` on timeout or closed topic.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Bytes> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Some(b),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Bytes> {
        self.rx.try_recv().ok()
    }

    /// Number of messages waiting in this subscription's queue.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }

    /// The raw receiver (for `select!`-style integration).
    pub fn receiver(&self) -> &Receiver<Bytes> {
        &self.rx
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut topics = self.inner.topics.write();
        if let Some(state) = topics.get_mut(&self.topic) {
            state.subscribers.retain(|(id, _)| *id != self.id);
            if state.subscribers.is_empty() {
                topics.remove(&self.topic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn fifo_delivery_to_all_subscribers() {
        let broker = Broker::new();
        let s1 = broker.subscribe("t");
        let s2 = broker.subscribe("t");
        broker.publish("t", b("1"));
        broker.publish("t", b("2"));
        for s in [&s1, &s2] {
            assert_eq!(s.recv_timeout(Duration::from_secs(1)).unwrap(), b("1"));
            assert_eq!(s.recv_timeout(Duration::from_secs(1)).unwrap(), b("2"));
        }
    }

    #[test]
    fn publish_without_subscribers_vanishes() {
        let broker = Broker::new();
        assert_eq!(broker.publish("ghost", b("x")), 0);
        let s = broker.subscribe("ghost");
        assert_eq!(s.try_recv(), None, "no retention");
    }

    #[test]
    fn topics_are_isolated() {
        let broker = Broker::new();
        let a = broker.subscribe("a");
        let bsub = broker.subscribe("b");
        broker.publish("a", b("for-a"));
        assert_eq!(a.recv_timeout(Duration::from_secs(1)).unwrap(), b("for-a"));
        assert_eq!(bsub.try_recv(), None);
    }

    #[test]
    fn drop_unsubscribes() {
        let broker = Broker::new();
        let s = broker.subscribe("t");
        assert_eq!(broker.subscriber_count("t"), 1);
        drop(s);
        assert_eq!(broker.subscriber_count("t"), 0);
        assert_eq!(broker.publish("t", b("x")), 0);
    }

    #[test]
    fn chaos_delay_reorders_but_delivers() {
        let broker = Broker::with_chaos(ChaosConfig {
            seed: 7,
            delay: Some((Duration::ZERO, Duration::from_millis(10))),
            ..ChaosConfig::default()
        });
        let s = broker.subscribe("t");
        let n = 50;
        for i in 0..n {
            broker.publish("t", b(&format!("{i}")));
        }
        let mut got = Vec::new();
        for _ in 0..n {
            got.push(s.recv_timeout(Duration::from_secs(5)).expect("delivered"));
        }
        let mut sorted = got.clone();
        sorted.sort_by_key(|x| String::from_utf8_lossy(x).parse::<u32>().unwrap());
        assert_eq!(sorted.len(), n as usize, "everything arrives");
        // With 50 messages and 0-10ms random delays, reordering is
        // overwhelmingly likely; tolerate the rare fully ordered run by
        // only asserting delivery completeness above and recording order.
        let reordered = got != sorted;
        let _ = reordered;
    }

    #[test]
    fn chaos_drops_messages() {
        let broker = Broker::with_chaos(ChaosConfig {
            seed: 42,
            drop_probability: 0.5,
            ..ChaosConfig::default()
        });
        let s = broker.subscribe("t");
        for i in 0..200 {
            broker.publish("t", b(&format!("{i}")));
        }
        std::thread::sleep(Duration::from_millis(50));
        let received = s.queued();
        assert!(received < 180, "some messages must be dropped, got {received}");
        assert!(received > 20, "not everything may be dropped, got {received}");
        let (published, _, dropped) = broker.stats();
        assert_eq!(published, 200);
        assert!(dropped > 0);
    }

    #[test]
    fn publish_survives_dead_cluster() {
        // The worst-case scenario of §5: the cluster is gone; requests
        // against the event layer remain unanswered but never error.
        let broker = Broker::new();
        let cluster = broker.subscribe(CLUSTER_TOPIC);
        drop(cluster); // "cluster taken down"
        for i in 0..10 {
            broker.publish(CLUSTER_TOPIC, b(&format!("write-{i}")));
        }
        assert_eq!(broker.subscriber_count(CLUSTER_TOPIC), 0);
    }

    #[test]
    fn notify_topic_naming() {
        assert_eq!(notify_topic("app1"), "invalidb.notify.app1");
    }

    #[test]
    fn shuffle_topic_naming() {
        assert_eq!(shuffle_topic(0), "invalidb.shuffle.q0");
        assert_eq!(shuffle_topic(7), "invalidb.shuffle.q7");
    }
}
