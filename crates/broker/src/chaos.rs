//! Delayed-delivery scheduler and chaos configuration.

use bytes::Bytes;
use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which topics chaos applies to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ChaosScope {
    /// Misbehave on every topic.
    #[default]
    AllTopics,
    /// Misbehave only on topics starting with this prefix (e.g. scope chaos
    /// to the cluster-inbound topic to model the paper's "writes delayed or
    /// skewed" while client channels stay ordered, like a WebSocket).
    TopicPrefix(String),
}

/// Fault-injection settings for a [`crate::Broker`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed (deterministic chaos for reproducible tests).
    pub seed: u64,
    /// Per-message delivery delay drawn uniformly from `(min, max)`.
    /// Variable delays naturally cause reordering between messages.
    pub delay: Option<(Duration, Duration)>,
    /// Probability in `[0, 1]` of dropping a message outright.
    pub drop_probability: f64,
    /// Which topics the chaos applies to.
    pub scope: ChaosScope,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { seed: 0, delay: None, drop_probability: 0.0, scope: ChaosScope::AllTopics }
    }
}

struct Pending {
    due: Instant,
    seq: u64,
    tx: Sender<Bytes>,
    payload: Bytes,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

#[derive(Default)]
struct SchedulerState {
    heap: BinaryHeap<Reverse<Pending>>,
    next_seq: u64,
    shutdown: bool,
}

/// Background thread delivering delayed messages at their due time.
/// Created lazily: brokers without chaos never spawn the thread.
pub(crate) struct DelayScheduler {
    state: Arc<(Mutex<SchedulerState>, Condvar)>,
    started: Mutex<bool>,
}

impl DelayScheduler {
    pub(crate) fn new() -> Self {
        Self {
            state: Arc::new((Mutex::new(SchedulerState::default()), Condvar::new())),
            started: Mutex::new(false),
        }
    }

    fn ensure_thread(&self) {
        let mut started = self.started.lock();
        if *started {
            return;
        }
        *started = true;
        let state = Arc::clone(&self.state);
        std::thread::Builder::new()
            .name("invalidb-broker-delay".into())
            .spawn(move || run_scheduler(state))
            .expect("spawn delay scheduler");
    }

    pub(crate) fn schedule(&self, delay: Duration, tx: Sender<Bytes>, payload: Bytes) {
        self.ensure_thread();
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(Reverse(Pending { due: Instant::now() + delay, seq, tx, payload }));
        cvar.notify_one();
    }
}

impl Drop for DelayScheduler {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.state;
        lock.lock().shutdown = true;
        cvar.notify_all();
    }
}

fn run_scheduler(state: Arc<(Mutex<SchedulerState>, Condvar)>) {
    let (lock, cvar) = &*state;
    let mut st = lock.lock();
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        // Deliver everything due.
        while st.heap.peek().is_some_and(|Reverse(p)| p.due <= now) {
            let Reverse(p) = st.heap.pop().expect("peeked");
            // Ignore send failures: the subscriber unsubscribed meanwhile.
            let _ = p.tx.send(p.payload);
        }
        match st.heap.peek() {
            Some(Reverse(p)) => {
                let wait = p.due.saturating_duration_since(now);
                cvar.wait_for(&mut st, wait);
            }
            None => {
                cvar.wait(&mut st);
            }
        }
    }
}
