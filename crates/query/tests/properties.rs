//! Property-based tests for the query engine.

use invalidb_common::{doc, Document, Key, QuerySpec, SortDirection, SortSpec, Value};
use invalidb_query::{compare_items, normalize_spec, parse_filter, MongoQueryEngine, QueryEngine};
use proptest::prelude::*;
use std::cmp::Ordering;

fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-20i64..20).prop_map(Value::Int),
        (-20i64..20).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-d]{0,3}".prop_map(Value::String),
    ]
}

fn small_doc() -> impl Strategy<Value = Document> {
    prop::collection::vec(("[abc]", scalar()), 0..4).prop_map(|pairs| pairs.into_iter().collect())
}

/// Random filter documents over fields a/b/c with random operators.
fn filter_doc() -> impl Strategy<Value = Document> {
    let pred = prop_oneof![
        scalar().prop_map(|v| Value::Object(doc! { "$eq" => v })),
        scalar().prop_map(|v| Value::Object(doc! { "$ne" => v })),
        scalar().prop_map(|v| Value::Object(doc! { "$gt" => v })),
        scalar().prop_map(|v| Value::Object(doc! { "$lte" => v })),
        prop::collection::vec(scalar(), 0..3).prop_map(|vs| Value::Object(doc! { "$in" => vs })),
        any::<bool>().prop_map(|b| Value::Object(doc! { "$exists" => b })),
        scalar(), // literal equality
    ];
    prop::collection::vec(("[abc]", pred), 1..3).prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matching_never_panics(f in filter_doc(), d in small_doc()) {
        let filter = parse_filter(&f).unwrap();
        let _ = filter.matches(&d);
    }

    #[test]
    fn negation_pairs_are_complementary(d in small_doc(), v in scalar()) {
        // $ne is the exact complement of $eq; $nin of $in.
        let eq = parse_filter(&doc! { "a" => doc! { "$eq" => v.clone() } }).unwrap();
        let ne = parse_filter(&doc! { "a" => doc! { "$ne" => v.clone() } }).unwrap();
        prop_assert_ne!(eq.matches(&d), ne.matches(&d));
        let inn = parse_filter(&doc! { "a" => doc! { "$in" => vec![v.clone()] } }).unwrap();
        let nin = parse_filter(&doc! { "a" => doc! { "$nin" => vec![v] } }).unwrap();
        prop_assert_ne!(inn.matches(&d), nin.matches(&d));
    }

    #[test]
    fn and_or_laws(f1 in filter_doc(), f2 in filter_doc(), d in small_doc()) {
        let a = parse_filter(&f1).unwrap();
        let b = parse_filter(&f2).unwrap();
        let and = parse_filter(&doc! { "$and" => vec![Value::Object(f1.clone()), Value::Object(f2.clone())] }).unwrap();
        let or = parse_filter(&doc! { "$or" => vec![Value::Object(f1.clone()), Value::Object(f2.clone())] }).unwrap();
        let nor = parse_filter(&doc! { "$nor" => vec![Value::Object(f1), Value::Object(f2)] }).unwrap();
        prop_assert_eq!(and.matches(&d), a.matches(&d) && b.matches(&d));
        prop_assert_eq!(or.matches(&d), a.matches(&d) || b.matches(&d));
        prop_assert_eq!(nor.matches(&d), !(a.matches(&d) || b.matches(&d)));
    }

    #[test]
    fn normalization_preserves_matching(f in filter_doc(), d in small_doc()) {
        let spec = QuerySpec::filter("t", f);
        let norm = normalize_spec(&spec);
        let orig = MongoQueryEngine.prepare(&spec).unwrap();
        let canon = MongoQueryEngine.prepare(&norm).unwrap();
        prop_assert_eq!(orig.matches(&d), canon.matches(&d));
    }

    #[test]
    fn normalization_is_idempotent(f in filter_doc()) {
        let spec = QuerySpec::filter("t", f);
        let once = normalize_spec(&spec);
        let twice = normalize_spec(&once);
        prop_assert_eq!(once.stable_hash(), twice.stable_hash());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn comparator_total_order(
        docs in prop::collection::vec(small_doc(), 3),
        dir in prop_oneof![Just(SortDirection::Asc), Just(SortDirection::Desc)],
    ) {
        let spec: SortSpec = vec![("a".into(), dir)];
        let items: Vec<(Key, Document)> = docs
            .into_iter()
            .enumerate()
            .map(|(i, d)| (Key::of(i as i64), d))
            .collect();
        let cmp = |x: &(Key, Document), y: &(Key, Document)| compare_items(&spec, (&x.0, &x.1), (&y.0, &y.1));
        // Antisymmetry.
        for x in &items {
            for y in &items {
                prop_assert_eq!(cmp(x, y), cmp(y, x).reverse());
            }
        }
        // Transitivity over every permutation of the three items.
        let [a, b, c] = [&items[0], &items[1], &items[2]];
        for (x, y, z) in [(a, b, c), (a, c, b), (b, a, c), (b, c, a), (c, a, b), (c, b, a)] {
            if cmp(x, y) != Ordering::Greater && cmp(y, z) != Ordering::Greater {
                prop_assert_ne!(cmp(x, z), Ordering::Greater);
            }
        }
        // Distinct keys => never Equal (unambiguous sort key, §5.2 fn. 4).
        prop_assert_ne!(cmp(a, b), Ordering::Equal);
    }
}
