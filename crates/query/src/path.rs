//! MongoDB-style field-path resolution with implicit array traversal.
//!
//! Document stores resolve a path like `"items.qty"` against arrays by
//! *fanning out*: if `items` is an array of objects, every element's `qty`
//! is a candidate value. Numeric segments double as array indices. The
//! matcher then applies a predicate across all candidates ("any candidate
//! matches" for positive predicates).

use invalidb_common::{Document, Value};

/// All values a dotted path resolves to within a document, in traversal
/// order. An empty result means the path is missing entirely.
pub fn resolve<'a>(doc: &'a Document, path: &str) -> Vec<&'a Value> {
    let mut out = Vec::new();
    let segments: Vec<&str> = path.split('.').collect();
    resolve_doc(doc, &segments, &mut out);
    out
}

fn resolve_doc<'a>(doc: &'a Document, segments: &[&str], out: &mut Vec<&'a Value>) {
    let (head, rest) = match segments.split_first() {
        Some(split) => split,
        None => return,
    };
    if let Some(v) = doc.get(head) {
        if rest.is_empty() {
            out.push(v);
        } else {
            resolve_value(v, rest, out);
        }
    }
}

fn resolve_value<'a>(value: &'a Value, segments: &[&str], out: &mut Vec<&'a Value>) {
    match value {
        Value::Object(doc) => resolve_doc(doc, segments, out),
        Value::Array(items) => {
            let (head, rest) = segments.split_first().expect("segments non-empty");
            // A numeric segment addresses one element...
            if let Ok(idx) = head.parse::<usize>() {
                if let Some(elem) = items.get(idx) {
                    if rest.is_empty() {
                        out.push(elem);
                    } else {
                        resolve_value(elem, rest, out);
                    }
                }
            }
            // ...and the same segment also fans out across object elements
            // (MongoDB applies both interpretations).
            for elem in items {
                if let Value::Object(doc) = elem {
                    resolve_doc(doc, segments, out);
                }
            }
        }
        _ => {}
    }
}

/// Resolution used by *sort keys* (no fan-out): first value on the plain
/// object/index path, or `None` when missing.
pub fn resolve_first<'a>(doc: &'a Document, path: &str) -> Option<&'a Value> {
    doc.get_path(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn plain_nested_path() {
        let d = doc! { "a" => doc! { "b" => 1i64 } };
        let vals = resolve(&d, "a.b");
        assert_eq!(vals, vec![&Value::Int(1)]);
        assert!(resolve(&d, "a.c").is_empty());
        assert!(resolve(&d, "x").is_empty());
    }

    #[test]
    fn array_fan_out_over_objects() {
        let d = doc! {
            "items" => vec![
                Value::Object(doc! { "qty" => 5i64 }),
                Value::Object(doc! { "qty" => 9i64 }),
                Value::from("not-an-object"),
            ],
        };
        let vals = resolve(&d, "items.qty");
        assert_eq!(vals, vec![&Value::Int(5), &Value::Int(9)]);
    }

    #[test]
    fn numeric_segment_indexes_arrays() {
        let d = doc! { "tags" => vec!["a", "b", "c"] };
        assert_eq!(resolve(&d, "tags.1"), vec![&Value::String("b".into())]);
        assert!(resolve(&d, "tags.9").is_empty());
    }

    #[test]
    fn numeric_segment_also_fans_out() {
        // `a.0.b` must find both the indexed element's `b` and any object
        // element with a field literally named "0" — the index path wins
        // here; the fan-out adds the object case.
        let d = doc! {
            "a" => vec![
                Value::Object(doc! { "b" => 1i64 }),
                Value::Object(doc! { "0" => doc! { "b" => 2i64 } }),
            ],
        };
        let vals = resolve(&d, "a.0.b");
        assert_eq!(vals, vec![&Value::Int(1), &Value::Int(2)]);
    }

    #[test]
    fn terminal_array_returned_whole() {
        let d = doc! { "tags" => vec!["a", "b"] };
        let vals = resolve(&d, "tags");
        assert_eq!(vals.len(), 1);
        assert!(matches!(vals[0], Value::Array(_)));
    }

    #[test]
    fn deep_mixed_nesting() {
        let d = doc! {
            "orders" => vec![
                Value::Object(doc! { "lines" => vec![Value::Object(doc! { "sku" => "x" })] }),
                Value::Object(doc! { "lines" => vec![Value::Object(doc! { "sku" => "y" })] }),
            ],
        };
        let vals = resolve(&d, "orders.lines.sku");
        assert_eq!(vals, vec![&Value::String("x".into()), &Value::String("y".into())]);
    }

    #[test]
    fn scalar_blocks_descent() {
        let d = doc! { "a" => 5i64 };
        assert!(resolve(&d, "a.b").is_empty());
    }
}
