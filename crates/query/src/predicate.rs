//! Conjunctive filter decomposition — the shared vocabulary of the
//! multi-query optimizations (the thesis's "multi-query optimizations";
//! SharedDB-style shared predicate evaluation).
//!
//! A filter is decomposed into its canonical set of **atoms**: the smallest
//! conjuncts whose AND is exactly the original filter.
//! `{status: "open", price: {$gt: 10, $lt: 100}}` becomes three atoms —
//! `{status: "open"}`, `{price: {$gt: 10}}` and `{price: {$lt: 100}}`.
//! Each atom carries a stable [`PredicateHash`] over its canonical byte
//! encoding, so the *same* predicate appearing in a thousand different
//! subscriptions is recognized as one — the filtering stage then evaluates
//! it once per write, not once per query.
//!
//! Splitting a multi-operator condition is exact under MongoDB semantics:
//! `{a: {$gt: 5, $lt: 9}}` parses to a conjunction of predicates that are
//! each evaluated independently over the same resolved values (implicit
//! array fan-out included), which is precisely what
//! `{$and: [{a: {$gt: 5}}, {a: {$lt: 9}}]}` parses to. The only operators
//! that must stay together are the coupled pairs `$regex`/`$options` and
//! `$nearSphere`/`$maxDistance` — the modifier is consumed by its partner
//! at parse time and is not a standalone predicate.

use crate::normalize::conjuncts_of;
use invalidb_common::{stable_hash64, Document, Value};

/// Stable identity of one atomic predicate: the hash of the canonical byte
/// encoding of its single-conjunct filter document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredicateHash(pub u64);

/// Stable identity of a whole filter: the hash of its sorted atom hashes.
/// Two filters with the same `FilterHash` are the same conjunction, however
/// they were spelled (`$and` nesting, operator grouping, key order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterHash(pub u64);

/// One atomic conjunct in canonical, standalone filter-document form.
#[derive(Debug, Clone)]
pub struct Atom {
    /// The conjunct as a filter document that can be parsed on its own.
    pub doc: Document,
    /// Hash-consed identity of this predicate.
    pub hash: PredicateHash,
}

/// Hashes a single-conjunct filter document into its predicate identity.
pub fn predicate_hash(conjunct: &Document) -> PredicateHash {
    let mut bytes = Vec::new();
    Value::Object(conjunct.clone()).write_canonical(&mut bytes);
    PredicateHash(stable_hash64(&bytes))
}

/// Decomposes a filter into its canonical atom set (sorted, deduplicated).
/// The conjunction of the returned atoms is semantically identical to the
/// input filter; an empty set means the filter matches everything.
pub fn decompose(filter: &Document) -> Vec<Atom> {
    conjuncts_of(filter)
        .into_iter()
        .map(|doc| {
            let hash = predicate_hash(&doc);
            Atom { doc, hash }
        })
        .collect()
}

/// The filter identity of an atom set produced by [`decompose`] (whose
/// output is already canonically sorted).
pub fn filter_hash(atoms: &[Atom]) -> FilterHash {
    let mut bytes = Vec::with_capacity(atoms.len() * 8);
    for atom in atoms {
        bytes.extend_from_slice(&atom.hash.0.to_be_bytes());
    }
    FilterHash(stable_hash64(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn hashes(filter: &Document) -> Vec<PredicateHash> {
        decompose(filter).iter().map(|a| a.hash).collect()
    }

    #[test]
    fn conjunction_splits_into_atoms() {
        let atoms = decompose(&doc! {
            "status" => "open",
            "price" => doc! { "$gt" => 10i64, "$lt" => 100i64 },
        });
        assert_eq!(atoms.len(), 3);
        // Every atom parses standalone.
        for atom in &atoms {
            crate::parse::parse_filter(&atom.doc).expect("atom parses");
        }
    }

    #[test]
    fn identical_predicates_hash_identically_across_spellings() {
        // The shared predicate appears inside different filters with
        // different spellings; its atom hash must be the same everywhere.
        let a = decompose(&doc! { "status" => "open", "n" => doc! { "$lt" => 5i64 } });
        let b = decompose(&doc! { "$and" => vec![
            Value::Object(doc! { "status" => doc! { "$eq" => "open" } }),
            Value::Object(doc! { "m" => 1i64 }),
        ]});
        let shared = predicate_hash(&doc! { "status" => "open" });
        assert!(a.iter().any(|at| at.hash == shared));
        assert!(b.iter().any(|at| at.hash == shared));
    }

    #[test]
    fn filter_hash_is_spelling_invariant() {
        let a = decompose(&doc! { "a" => doc! { "$gt" => 5i64, "$lt" => 9i64 }, "b" => 1i64 });
        let b = decompose(&doc! { "$and" => vec![
            Value::Object(doc! { "b" => doc! { "$eq" => 1i64 } }),
            Value::Object(doc! { "$and" => vec![
                Value::Object(doc! { "a" => doc! { "$lt" => 9i64 } }),
                Value::Object(doc! { "a" => doc! { "$gt" => 5i64 } }),
            ]}),
        ]});
        assert_eq!(filter_hash(&a), filter_hash(&b));
        let c = decompose(&doc! { "a" => doc! { "$gt" => 5i64 } });
        assert_ne!(filter_hash(&a), filter_hash(&c));
    }

    #[test]
    fn coupled_operators_stay_together() {
        let atoms = decompose(&doc! {
            "name" => doc! { "$regex" => "^ab", "$options" => "i" },
            "loc" => doc! { "$nearSphere" => vec![10.0, 53.5], "$maxDistance" => 500.0 },
        });
        assert_eq!(atoms.len(), 2, "coupled conditions are single atoms");
        for atom in &atoms {
            crate::parse::parse_filter(&atom.doc).expect("coupled atom parses standalone");
        }
    }

    #[test]
    fn empty_filter_has_no_atoms() {
        assert!(decompose(&doc! {}).is_empty());
    }

    #[test]
    fn duplicate_conjuncts_collapse() {
        let atoms = decompose(&doc! { "$and" => vec![
            Value::Object(doc! { "a" => 1i64 }),
            Value::Object(doc! { "a" => doc! { "$eq" => 1i64 } }),
        ]});
        assert_eq!(atoms.len(), 1);
        assert_eq!(hashes(&doc! { "a" => 1i64 }), atoms.iter().map(|a| a.hash).collect::<Vec<_>>());
    }
}
