//! Filter AST and evaluation with MongoDB matching semantics.
//!
//! A [`Filter`] is evaluated against a single document ("does this
//! after-image match?"). Semantics follow MongoDB's:
//!
//! * field predicates resolve their path with implicit array fan-out
//!   ([`crate::path::resolve`]); a positive predicate holds when *any*
//!   candidate (or array element of a candidate) satisfies it;
//! * multiple operators on one field may be satisfied by *different* array
//!   elements (`{a: {$gt: 5, $lt: 9}}` matches `a: [4, 10]`) — `$elemMatch`
//!   exists to demand a single element;
//! * ordered comparisons apply *type bracketing*: values of different
//!   canonical type brackets never compare (no `5 < "x"` surprises);
//! * `{field: null}` matches both explicit nulls and missing fields;
//!   `$ne`/`$nin`/`$not` are true negations (they match missing fields).

use crate::geo::{haversine_m, GeoShape, Point};
use crate::path::resolve;
use crate::regex::Regex;
use crate::text::TextQuery;
use invalidb_common::{canonical_cmp, canonical_eq, Document, Value};
use std::cmp::Ordering;

/// A compiled filter expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every document (`{}`).
    True,
    /// Conjunction (`$and`, also implicit across top-level fields).
    And(Vec<Filter>),
    /// Disjunction (`$or`).
    Or(Vec<Filter>),
    /// Joint denial (`$nor`).
    Nor(Vec<Filter>),
    /// All predicates on one field path.
    Field {
        /// Dotted field path.
        path: String,
        /// Predicates that must all hold.
        preds: Vec<FieldPred>,
    },
    /// Full-text search (`$text`).
    Text(TextQuery),
}

/// One operator applied to a field path.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldPred {
    /// `$eq` (also implicit literal equality).
    Eq(Value),
    /// `$ne`.
    Ne(Value),
    /// `$gt`.
    Gt(Value),
    /// `$gte`.
    Gte(Value),
    /// `$lt`.
    Lt(Value),
    /// `$lte`.
    Lte(Value),
    /// `$in`.
    In(Vec<Value>),
    /// `$nin`.
    Nin(Vec<Value>),
    /// `$exists`.
    Exists(bool),
    /// `$mod: [divisor, remainder]`.
    Mod(i64, i64),
    /// `$size`.
    Size(i64),
    /// `$all`.
    All(Vec<Value>),
    /// `$elemMatch` with a sub-filter (element must be a matching object).
    ElemMatchFilter(Box<Filter>),
    /// `$elemMatch` with operators applied directly to elements.
    ElemMatchPreds(Vec<FieldPred>),
    /// `$regex` (with `$options`).
    Regex(Regex),
    /// `$not` — negates a set of operators.
    Not(Vec<FieldPred>),
    /// `$type` by type name (`"string"`, `"int"`, ...).
    Type(String),
    /// `$geoWithin`.
    GeoWithin(GeoShape),
    /// `$nearSphere` with `$maxDistance` in meters.
    NearSphere {
        /// Query point.
        center: Point,
        /// Maximum haversine distance in meters.
        max_distance_m: f64,
    },
}

impl Filter {
    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::True => true,
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Nor(fs) => !fs.iter().any(|f| f.matches(doc)),
            Filter::Field { path, preds } => {
                let candidates = resolve(doc, path);
                preds.iter().all(|p| pred_holds(p, &candidates))
            }
            Filter::Text(q) => q.matches(doc),
        }
    }
}

/// Evaluates one predicate over the candidate values of a field path.
fn pred_holds(pred: &FieldPred, candidates: &[&Value]) -> bool {
    match pred {
        FieldPred::Eq(v) => {
            if matches!(v, Value::Null) && candidates.is_empty() {
                return true; // {field: null} matches missing fields
            }
            candidates.iter().any(|c| eq_value_match(c, v))
        }
        FieldPred::Ne(v) => !pred_holds(&FieldPred::Eq(v.clone()), candidates),
        FieldPred::Gt(v) => any_ordered(candidates, v, |o| o == Ordering::Greater),
        FieldPred::Gte(v) => any_ordered(candidates, v, |o| o != Ordering::Less),
        FieldPred::Lt(v) => any_ordered(candidates, v, |o| o == Ordering::Less),
        FieldPred::Lte(v) => any_ordered(candidates, v, |o| o != Ordering::Greater),
        FieldPred::In(list) => {
            if list.iter().any(|v| matches!(v, Value::Null)) && candidates.is_empty() {
                return true;
            }
            candidates.iter().any(|c| list.iter().any(|v| eq_value_match(c, v)))
        }
        FieldPred::Nin(list) => !pred_holds(&FieldPred::In(list.clone()), candidates),
        FieldPred::Exists(want) => candidates.is_empty() != *want,
        FieldPred::Mod(d, r) => any_scalar(candidates, |v| {
            v.as_i64().is_some_and(|n| *d != 0 && n.rem_euclid(*d) == r.rem_euclid(*d))
        }),
        FieldPred::Size(n) => {
            candidates.iter().any(|c| matches!(c, Value::Array(items) if items.len() as i64 == *n))
        }
        FieldPred::All(list) => {
            if list.is_empty() {
                return false;
            }
            candidates.iter().any(|c| list.iter().all(|v| eq_value_match(c, v)))
        }
        FieldPred::ElemMatchFilter(f) => candidates.iter().any(|c| match c {
            Value::Array(items) => items.iter().any(|e| match e {
                Value::Object(obj) => f.matches(obj),
                _ => false,
            }),
            _ => false,
        }),
        FieldPred::ElemMatchPreds(preds) => candidates.iter().any(|c| match c {
            Value::Array(items) => items.iter().any(|e| preds.iter().all(|p| pred_holds(p, &[e]))),
            _ => false,
        }),
        FieldPred::Regex(r) => any_scalar(candidates, |v| match v {
            Value::String(s) => r.is_match(s),
            _ => false,
        }),
        FieldPred::Not(preds) => !preds.iter().all(|p| pred_holds(p, candidates)),
        FieldPred::Type(name) => candidates.iter().any(|c| c.type_name() == name),
        FieldPred::GeoWithin(shape) => {
            candidates.iter().any(|c| Point::parse(c).is_some_and(|p| shape.contains(p)))
        }
        FieldPred::NearSphere { center, max_distance_m } => candidates
            .iter()
            .any(|c| Point::parse(c).is_some_and(|p| haversine_m(*center, p) <= *max_distance_m)),
    }
}

/// Equality with implicit array containment: `c == v`, or `c` is an array
/// containing an element equal to `v`.
fn eq_value_match(c: &Value, v: &Value) -> bool {
    if canonical_eq(c, v) {
        return true;
    }
    match c {
        Value::Array(items) => items.iter().any(|e| canonical_eq(e, v)),
        _ => false,
    }
}

/// Ordered comparison with type bracketing and array fan-out.
fn any_ordered(candidates: &[&Value], v: &Value, ok: impl Fn(Ordering) -> bool) -> bool {
    let test = |c: &Value| c.type_rank() == v.type_rank() && ok(canonical_cmp(c, v));
    candidates.iter().any(|c| {
        test(c)
            || match c {
                Value::Array(items) => items.iter().any(&test),
                _ => false,
            }
    })
}

/// Scalar test with array fan-out (used by `$mod` and `$regex`).
fn any_scalar(candidates: &[&Value], test: impl Fn(&Value) -> bool) -> bool {
    candidates.iter().any(|c| {
        test(c)
            || match c {
                Value::Array(items) => items.iter().any(&test),
                _ => false,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn field(path: &str, pred: FieldPred) -> Filter {
        Filter::Field { path: path.into(), preds: vec![pred] }
    }

    #[test]
    fn implicit_equality_and_array_containment() {
        let d = doc! { "tags" => vec!["a", "b"], "n" => 5i64 };
        assert!(field("tags", FieldPred::Eq("a".into())).matches(&d));
        assert!(!field("tags", FieldPred::Eq("z".into())).matches(&d));
        assert!(field("n", FieldPred::Eq(Value::Float(5.0))).matches(&d), "cross-numeric eq");
        // Whole-array equality.
        assert!(field("tags", FieldPred::Eq(Value::from(vec!["a", "b"]))).matches(&d));
    }

    #[test]
    fn null_matches_missing() {
        let d = doc! { "a" => Value::Null };
        assert!(field("a", FieldPred::Eq(Value::Null)).matches(&d));
        assert!(field("zzz", FieldPred::Eq(Value::Null)).matches(&d));
        assert!(!field("zzz", FieldPred::Eq(1i64.into())).matches(&d));
    }

    #[test]
    fn ne_matches_missing() {
        let d = doc! { "a" => 1i64 };
        assert!(field("b", FieldPred::Ne(5i64.into())).matches(&d));
        assert!(field("a", FieldPred::Ne(5i64.into())).matches(&d));
        assert!(!field("a", FieldPred::Ne(1i64.into())).matches(&d));
    }

    #[test]
    fn ordered_comparisons_with_type_bracketing() {
        let d = doc! { "n" => 5i64, "s" => "x" };
        assert!(field("n", FieldPred::Gt(3i64.into())).matches(&d));
        assert!(field("n", FieldPred::Gte(5i64.into())).matches(&d));
        assert!(field("n", FieldPred::Lt(Value::Float(5.5))).matches(&d));
        assert!(!field("n", FieldPred::Gt(5i64.into())).matches(&d));
        // Strings never satisfy numeric comparisons and vice versa.
        assert!(!field("s", FieldPred::Gt(0i64.into())).matches(&d));
        assert!(!field("n", FieldPred::Lt("zzz".into())).matches(&d));
        // But strings compare with strings.
        assert!(field("s", FieldPred::Gt("a".into())).matches(&d));
    }

    #[test]
    fn multiple_operators_may_use_different_elements() {
        let d = doc! { "a" => vec![4i64, 10] };
        let f = Filter::Field {
            path: "a".into(),
            preds: vec![FieldPred::Gt(5i64.into()), FieldPred::Lt(9i64.into())],
        };
        assert!(f.matches(&d), "4 satisfies $lt, 10 satisfies $gt");
        // $elemMatch demands one element satisfying both.
        let em = field(
            "a",
            FieldPred::ElemMatchPreds(vec![FieldPred::Gt(5i64.into()), FieldPred::Lt(9i64.into())]),
        );
        assert!(!em.matches(&d));
        let d2 = doc! { "a" => vec![4i64, 7] };
        assert!(em.matches(&d2));
    }

    #[test]
    fn in_nin() {
        let d = doc! { "x" => 2i64, "tags" => vec!["a"] };
        assert!(field("x", FieldPred::In(vec![1i64.into(), 2i64.into()])).matches(&d));
        assert!(!field("x", FieldPred::In(vec![3i64.into()])).matches(&d));
        assert!(field("tags", FieldPred::In(vec!["a".into()])).matches(&d));
        assert!(field("x", FieldPred::Nin(vec![3i64.into()])).matches(&d));
        assert!(!field("x", FieldPred::Nin(vec![2i64.into()])).matches(&d));
        // Null in $in matches missing field.
        assert!(field("missing", FieldPred::In(vec![Value::Null])).matches(&d));
        assert!(!field("missing", FieldPred::Nin(vec![Value::Null])).matches(&d));
    }

    #[test]
    fn exists() {
        let d = doc! { "a" => Value::Null };
        assert!(field("a", FieldPred::Exists(true)).matches(&d));
        assert!(!field("a", FieldPred::Exists(false)).matches(&d));
        assert!(field("b", FieldPred::Exists(false)).matches(&d));
    }

    #[test]
    fn mod_size_all() {
        let d = doc! { "n" => 10i64, "neg" => -7i64, "tags" => vec!["a", "b", "c"] };
        assert!(field("n", FieldPred::Mod(3, 1)).matches(&d));
        assert!(!field("n", FieldPred::Mod(3, 2)).matches(&d));
        // MongoDB $mod uses truncated semantics for negatives; we use
        // euclidean congruence on both sides which agrees on sign-matched
        // expectations: -7 ≡ 2 (mod 3).
        assert!(field("neg", FieldPred::Mod(3, 2)).matches(&d));
        assert!(field("tags", FieldPred::Size(3)).matches(&d));
        assert!(!field("tags", FieldPred::Size(2)).matches(&d));
        assert!(!field("n", FieldPred::Size(1)).matches(&d), "$size only applies to arrays");
        assert!(field("tags", FieldPred::All(vec!["a".into(), "c".into()])).matches(&d));
        assert!(!field("tags", FieldPred::All(vec!["a".into(), "z".into()])).matches(&d));
        assert!(!field("tags", FieldPred::All(vec![])).matches(&d));
        // Non-array field matches single-element $all.
        assert!(field("n", FieldPred::All(vec![10i64.into()])).matches(&d));
    }

    #[test]
    fn elem_match_with_subfilter() {
        let d = doc! {
            "items" => vec![
                Value::Object(doc! { "sku" => "x", "qty" => 2i64 }),
                Value::Object(doc! { "sku" => "y", "qty" => 9i64 }),
            ],
        };
        let f = field(
            "items",
            FieldPred::ElemMatchFilter(Box::new(Filter::And(vec![
                field("sku", FieldPred::Eq("y".into())),
                field("qty", FieldPred::Gt(5i64.into())),
            ]))),
        );
        assert!(f.matches(&d));
        let f2 = field(
            "items",
            FieldPred::ElemMatchFilter(Box::new(Filter::And(vec![
                field("sku", FieldPred::Eq("x".into())),
                field("qty", FieldPred::Gt(5i64.into())),
            ]))),
        );
        assert!(!f2.matches(&d));
    }

    #[test]
    fn regex_pred() {
        let d = doc! { "name" => "Wingerath", "tags" => vec!["alpha", "Beta"] };
        let r = Regex::compile("^wing", "i").unwrap();
        assert!(field("name", FieldPred::Regex(r)).matches(&d));
        let r = Regex::compile("^beta$", "i").unwrap();
        assert!(field("tags", FieldPred::Regex(r)).matches(&d), "regex fans out over arrays");
        let r = Regex::compile("gamma", "").unwrap();
        assert!(!field("tags", FieldPred::Regex(r)).matches(&d));
    }

    #[test]
    fn not_negates_and_matches_missing() {
        let d = doc! { "n" => 10i64 };
        assert!(!field("n", FieldPred::Not(vec![FieldPred::Gt(5i64.into())])).matches(&d));
        assert!(field("n", FieldPred::Not(vec![FieldPred::Gt(50i64.into())])).matches(&d));
        assert!(field("missing", FieldPred::Not(vec![FieldPred::Gt(0i64.into())])).matches(&d));
    }

    #[test]
    fn logical_combinators() {
        let d = doc! { "a" => 1i64, "b" => 2i64 };
        let a1 = field("a", FieldPred::Eq(1i64.into()));
        let b9 = field("b", FieldPred::Eq(9i64.into()));
        assert!(Filter::And(vec![a1.clone()]).matches(&d));
        assert!(!Filter::And(vec![a1.clone(), b9.clone()]).matches(&d));
        assert!(Filter::Or(vec![b9.clone(), a1.clone()]).matches(&d));
        assert!(!Filter::Or(vec![b9.clone()]).matches(&d));
        assert!(Filter::Nor(vec![b9.clone()]).matches(&d));
        assert!(!Filter::Nor(vec![a1]).matches(&d));
        assert!(Filter::True.matches(&d));
    }

    #[test]
    fn type_pred() {
        let d = doc! { "a" => 1i64, "b" => "s", "c" => 1.5f64 };
        assert!(field("a", FieldPred::Type("int".into())).matches(&d));
        assert!(field("b", FieldPred::Type("string".into())).matches(&d));
        assert!(field("c", FieldPred::Type("float".into())).matches(&d));
        assert!(!field("a", FieldPred::Type("string".into())).matches(&d));
    }

    #[test]
    fn geo_preds() {
        let d = doc! { "loc" => vec![10.0f64, 53.5f64] };
        let within = field(
            "loc",
            FieldPred::GeoWithin(GeoShape::Box {
                min: Point { lon: 9.0, lat: 53.0 },
                max: Point { lon: 11.0, lat: 54.0 },
            }),
        );
        assert!(within.matches(&d));
        let near = field(
            "loc",
            FieldPred::NearSphere { center: Point { lon: 10.0, lat: 53.6 }, max_distance_m: 20_000.0 },
        );
        assert!(near.matches(&d));
        let far = field(
            "loc",
            FieldPred::NearSphere { center: Point { lon: 20.0, lat: 40.0 }, max_distance_m: 20_000.0 },
        );
        assert!(!far.matches(&d));
    }

    #[test]
    fn nested_path_predicates() {
        let d = doc! { "user" => doc! { "age" => 30i64 } };
        assert!(field("user.age", FieldPred::Gte(18i64.into())).matches(&d));
        assert!(!field("user.age", FieldPred::Lt(18i64.into())).matches(&d));
    }
}
