//! `$text` full-text matching (§5.4).
//!
//! The pull-based MongoDB `$text` operator evaluates against a text index;
//! for push-based matching the InvaliDB engine evaluates the search
//! expression directly against the document's string content (recursively
//! over all string fields — the equivalent of a wildcard text index).
//!
//! Search syntax follows MongoDB: whitespace-separated terms are OR-ed,
//! `"quoted phrases"` must all occur, and `-term` negates. Matching is
//! case-insensitive; tokens are unicode-alphanumeric runs.

use invalidb_common::{Document, Value};

/// A parsed `$search` expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextQuery {
    /// OR-terms: at least one must occur (unless only phrases are given).
    pub terms: Vec<String>,
    /// Quoted phrases: all must occur as substrings (token-normalized).
    pub phrases: Vec<String>,
    /// Negated terms: none may occur.
    pub negated: Vec<String>,
}

impl TextQuery {
    /// Parses a `$search` string.
    pub fn parse(search: &str) -> TextQuery {
        let mut terms = Vec::new();
        let mut phrases = Vec::new();
        let mut negated = Vec::new();
        let mut rest = search;
        // Extract quoted phrases first.
        while let Some(start) = rest.find('"') {
            let before = &rest[..start];
            collect_terms(before, &mut terms, &mut negated);
            let after = &rest[start + 1..];
            match after.find('"') {
                Some(end) => {
                    let phrase = normalize(&after[..end]);
                    if !phrase.is_empty() {
                        phrases.push(phrase);
                    }
                    rest = &after[end + 1..];
                }
                None => {
                    // Unterminated quote: treat remainder as plain terms.
                    rest = after;
                    break;
                }
            }
        }
        collect_terms(rest, &mut terms, &mut negated);
        TextQuery { terms, phrases, negated }
    }

    /// Evaluates the text query against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        let haystack = normalize(&collect_strings(doc));
        if self.negated.iter().any(|t| contains_token(&haystack, t)) {
            return false;
        }
        if !self.phrases.iter().all(|p| haystack.contains(p.as_str())) {
            return false;
        }
        if self.terms.is_empty() {
            // Phrase-only (or empty) searches hinge on the phrases above.
            return !self.phrases.is_empty();
        }
        self.terms.iter().any(|t| contains_token(&haystack, t))
    }
}

fn collect_terms(text: &str, terms: &mut Vec<String>, negated: &mut Vec<String>) {
    for raw in text.split_whitespace() {
        if let Some(stripped) = raw.strip_prefix('-') {
            let t = normalize(stripped);
            if !t.is_empty() {
                negated.push(t);
            }
        } else {
            let t = normalize(raw);
            if !t.is_empty() {
                terms.push(t);
            }
        }
    }
}

/// Lowercases and collapses non-alphanumerics to single spaces.
fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Token-boundary containment: `needle` must appear as a whole token.
fn contains_token(haystack: &str, needle: &str) -> bool {
    haystack.split(' ').any(|tok| tok == needle)
}

/// Concatenates every string value in the document, recursively.
fn collect_strings(doc: &Document) -> String {
    let mut out = String::new();
    collect_doc(doc, &mut out);
    out
}

fn collect_doc(doc: &Document, out: &mut String) {
    for (_, v) in doc.iter() {
        collect_value(v, out);
    }
}

fn collect_value(v: &Value, out: &mut String) {
    match v {
        Value::String(s) => {
            out.push(' ');
            out.push_str(s);
        }
        Value::Array(items) => items.iter().for_each(|v| collect_value(v, out)),
        Value::Object(doc) => collect_doc(doc, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn article(title: &str, body: &str) -> Document {
        doc! { "title" => title, "body" => body, "views" => 7i64 }
    }

    #[test]
    fn parse_splits_terms_phrases_negations() {
        let q = TextQuery::parse(r#"coffee "french press" -decaf shop"#);
        assert_eq!(q.terms, vec!["coffee", "shop"]);
        assert_eq!(q.phrases, vec!["french press"]);
        assert_eq!(q.negated, vec!["decaf"]);
    }

    #[test]
    fn terms_are_or_semantics() {
        let q = TextQuery::parse("espresso latte");
        assert!(q.matches(&article("Best espresso in town", "")));
        assert!(q.matches(&article("A latte a day", "")));
        assert!(!q.matches(&article("Plain tea", "")));
    }

    #[test]
    fn phrases_must_all_match() {
        let q = TextQuery::parse(r#""french press" "cold brew""#);
        assert!(q.matches(&article("French press and cold brew compared", "")));
        assert!(!q.matches(&article("French press only", "")));
    }

    #[test]
    fn negation_vetoes() {
        let q = TextQuery::parse("coffee -decaf");
        assert!(q.matches(&article("coffee roast", "")));
        assert!(!q.matches(&article("decaf coffee", "")));
    }

    #[test]
    fn matching_is_case_insensitive_and_tokenized() {
        let q = TextQuery::parse("COFFEE");
        assert!(q.matches(&article("Great Coffee!", "")));
        // "coffeehouse" must not match the token "coffee".
        assert!(!q.matches(&article("coffeehouse", "")));
    }

    #[test]
    fn searches_nested_and_array_strings() {
        let q = TextQuery::parse("hidden");
        let d = doc! {
            "meta" => doc! { "tags" => vec!["plain", "hidden"] },
        };
        assert!(q.matches(&d));
    }

    #[test]
    fn unterminated_quote_degrades_to_terms() {
        let q = TextQuery::parse(r#"a "b c"#);
        assert_eq!(q.phrases, Vec::<String>::new());
        assert_eq!(q.terms, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_search_matches_nothing() {
        let q = TextQuery::parse("");
        assert!(!q.matches(&article("anything", "")));
    }
}
