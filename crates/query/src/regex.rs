//! Backtracking regular-expression engine for the `$regex` operator.
//!
//! The paper's MongoDB-compatible query engine supports content-based
//! filtering through regular expressions (§5.4); this module implements the
//! commonly used subset from scratch (no external dependency):
//!
//! * literals, `.` (any char except newline), escapes `\d \D \w \W \s \S`
//!   and escaped metacharacters;
//! * character classes `[a-z0-9_]`, negated classes `[^...]`, ranges;
//! * quantifiers `* + ?` and bounded `{m}`, `{m,}`, `{m,n}` (greedy);
//! * alternation `|` and groups `(...)` (non-capturing semantics);
//! * anchors `^` and `$`;
//! * the `i` flag for ASCII-case-insensitive matching.
//!
//! Matching is unanchored by default (`is_match` searches all start
//! positions), like MongoDB's `$regex`. A fuel counter bounds backtracking
//! so adversarial patterns cannot wedge a matching node.

use std::cell::Cell;
use std::fmt;

/// Maximum number of backtracking steps before a match attempt is abandoned
/// (treated as "no match"). Generous for real queries, small enough to keep
/// the matching node responsive under catastrophic patterns.
const MATCH_FUEL: u64 = 1_000_000;

/// A compiled regular expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    pattern: String,
    case_insensitive: bool,
    node: Node,
    anchored_start: bool,
}

/// Regex compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Description of the syntax problem.
    pub message: String,
    /// Byte offset in the pattern.
    pub offset: usize,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regex at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for RegexError {}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Empty,
    Char(char),
    AnyChar,
    Class { negated: bool, items: Vec<ClassItem> },
    Concat(Vec<Node>),
    Alternate(Vec<Node>),
    Repeat { node: Box<Node>, min: u32, max: Option<u32> },
    StartAnchor,
    EndAnchor,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit(bool),
    Word(bool),
    Space(bool),
}

impl Regex {
    /// Compiles a pattern. `flags` currently understands `i`.
    pub fn compile(pattern: &str, flags: &str) -> Result<Regex, RegexError> {
        let case_insensitive = flags.contains('i');
        let mut p = PatternParser { chars: pattern.chars().collect(), pos: 0 };
        let node = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(p.err("unexpected `)`"));
        }
        let anchored_start = starts_with_anchor(&node);
        Ok(Regex { pattern: pattern.to_owned(), case_insensitive, node, anchored_start })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True when the regex matches anywhere within `text`.
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = if self.case_insensitive {
            text.chars().map(|c| c.to_ascii_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        let fuel = Cell::new(MATCH_FUEL);
        if self.anchored_start {
            return self.try_at(&chars, 0, &fuel);
        }
        for start in 0..=chars.len() {
            if self.try_at(&chars, start, &fuel) {
                return true;
            }
            if fuel.get() == 0 {
                return false;
            }
        }
        false
    }

    fn try_at(&self, text: &[char], start: usize, fuel: &Cell<u64>) -> bool {
        let ci = self.case_insensitive;
        matches_node(&self.node, text, start, ci, fuel, &mut |_pos| true)
    }
}

fn starts_with_anchor(node: &Node) -> bool {
    match node {
        Node::StartAnchor => true,
        Node::Concat(nodes) => nodes.first().is_some_and(starts_with_anchor),
        Node::Alternate(branches) => branches.iter().all(starts_with_anchor),
        _ => false,
    }
}

/// Continuation-passing backtracking matcher. `k` receives the position
/// after this node matched; returning `true` commits the match.
fn matches_node(
    node: &Node,
    text: &[char],
    pos: usize,
    ci: bool,
    fuel: &Cell<u64>,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if fuel.get() == 0 {
        return false;
    }
    fuel.set(fuel.get() - 1);
    match node {
        Node::Empty => k(pos),
        Node::Char(c) => {
            let want = if ci { c.to_ascii_lowercase() } else { *c };
            if pos < text.len() && text[pos] == want {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::AnyChar => {
            if pos < text.len() && text[pos] != '\n' {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::Class { negated, items } => {
            if pos >= text.len() {
                return false;
            }
            let c = text[pos];
            let mut hit = items.iter().any(|item| class_item_matches(*item, c, ci));
            if *negated {
                hit = !hit;
            }
            if hit {
                k(pos + 1)
            } else {
                false
            }
        }
        Node::StartAnchor => {
            if pos == 0 {
                k(pos)
            } else {
                false
            }
        }
        Node::EndAnchor => {
            if pos == text.len() {
                k(pos)
            } else {
                false
            }
        }
        Node::Concat(nodes) => matches_seq(nodes, text, pos, ci, fuel, k),
        Node::Alternate(branches) => {
            for b in branches {
                if matches_node(b, text, pos, ci, fuel, k) {
                    return true;
                }
                if fuel.get() == 0 {
                    return false;
                }
            }
            false
        }
        Node::Repeat { node, min, max } => matches_repeat(node, *min, *max, text, pos, ci, fuel, k),
    }
}

fn matches_seq(
    nodes: &[Node],
    text: &[char],
    pos: usize,
    ci: bool,
    fuel: &Cell<u64>,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match nodes.split_first() {
        None => k(pos),
        Some((head, rest)) => matches_node(head, text, pos, ci, fuel, &mut |next| {
            matches_seq(rest, text, next, ci, fuel, k)
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn matches_repeat(
    node: &Node,
    min: u32,
    max: Option<u32>,
    text: &[char],
    pos: usize,
    ci: bool,
    fuel: &Cell<u64>,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    if fuel.get() == 0 {
        return false;
    }
    if min > 0 {
        return matches_node(node, text, pos, ci, fuel, &mut |next| {
            // A mandatory repetition that consumed nothing would loop forever.
            if next == pos {
                return k(next);
            }
            matches_repeat(node, min - 1, max.map(|m| m.saturating_sub(1)), text, next, ci, fuel, k)
        });
    }
    // Greedy: try one more repetition first, then fall back to continuing.
    if max != Some(0) {
        let matched_more = matches_node(node, text, pos, ci, fuel, &mut |next| {
            if next == pos {
                // Zero-width repetition: stop expanding to guarantee progress.
                return false;
            }
            matches_repeat(node, 0, max.map(|m| m - 1), text, next, ci, fuel, k)
        });
        if matched_more {
            return true;
        }
    }
    k(pos)
}

fn class_item_matches(item: ClassItem, c: char, ci: bool) -> bool {
    match item {
        ClassItem::Char(want) => {
            if ci {
                want.to_ascii_lowercase() == c
            } else {
                want == c
            }
        }
        ClassItem::Range(lo, hi) => {
            if ci && lo.is_ascii_alphabetic() && hi.is_ascii_alphabetic() {
                let cl = c.to_ascii_lowercase();
                (lo.to_ascii_lowercase()..=hi.to_ascii_lowercase()).contains(&cl)
            } else {
                (lo..=hi).contains(&c)
            }
        }
        ClassItem::Digit(neg) => c.is_ascii_digit() != neg,
        ClassItem::Word(neg) => (c.is_ascii_alphanumeric() || c == '_') != neg,
        ClassItem::Space(neg) => c.is_whitespace() != neg,
    }
}

struct PatternParser {
    chars: Vec<char>,
    pos: usize,
}

impl PatternParser {
    fn err(&self, msg: &str) -> RegexError {
        RegexError { message: msg.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn alternation(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Node::Alternate(branches))
        }
    }

    fn concat(&mut self) -> Result<Node, RegexError> {
        let mut nodes = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            nodes.push(self.repeatable()?);
        }
        match nodes.len() {
            0 => Ok(Node::Empty),
            1 => Ok(nodes.pop().expect("one node")),
            _ => Ok(Node::Concat(nodes)),
        }
    }

    fn repeatable(&mut self) -> Result<Node, RegexError> {
        let atom = self.atom()?;
        let node = match self.peek() {
            Some('*') => {
                self.pos += 1;
                Node::Repeat { node: Box::new(atom), min: 0, max: None }
            }
            Some('+') => {
                self.pos += 1;
                Node::Repeat { node: Box::new(atom), min: 1, max: None }
            }
            Some('?') => {
                self.pos += 1;
                Node::Repeat { node: Box::new(atom), min: 0, max: Some(1) }
            }
            Some('{') => {
                // Only a `{` immediately followed by a digit opens a
                // quantifier; otherwise it is a literal (like `a{b`). A
                // malformed quantifier that *does* start with a digit is a
                // hard error (`a{5,2}`) rather than silently literal.
                if self.chars.get(self.pos + 1).is_some_and(|c| c.is_ascii_digit()) {
                    self.bounded_repeat(atom)?
                } else {
                    atom
                }
            }
            _ => atom,
        };
        if matches!(self.peek(), Some('*') | Some('+')) {
            return Err(self.err("nested quantifier"));
        }
        Ok(node)
    }

    fn bounded_repeat(&mut self, atom: Node) -> Result<Node, RegexError> {
        debug_assert_eq!(self.peek(), Some('{'));
        self.pos += 1;
        let min = self.number()?;
        let max = match self.peek() {
            Some(',') => {
                self.pos += 1;
                if self.peek() == Some('}') {
                    None
                } else {
                    Some(self.number()?)
                }
            }
            _ => Some(min),
        };
        if self.bump() != Some('}') {
            return Err(self.err("expected `}`"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.err("repeat bound max < min"));
            }
        }
        if min > 1000 || max.unwrap_or(0) > 1000 {
            return Err(self.err("repeat bound too large"));
        }
        Ok(Node::Repeat { node: Box::new(atom), min, max })
    }

    fn number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while matches!(self.peek(), Some('0'..='9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| self.err("number too large"))
    }

    fn atom(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                // Treat `(?:` as a plain group.
                if self.peek() == Some('?') {
                    self.pos += 1;
                    if self.bump() != Some(':') {
                        return Err(self.err("only (?: groups are supported"));
                    }
                }
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some('[') => self.class(),
            Some('.') => Ok(Node::AnyChar),
            Some('^') => Ok(Node::StartAnchor),
            Some('$') => Ok(Node::EndAnchor),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(&format!("dangling quantifier `{c}`"))),
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn escape(&mut self) -> Result<Node, RegexError> {
        match self.bump() {
            None => Err(self.err("trailing backslash")),
            Some('d') => Ok(Node::Class { negated: false, items: vec![ClassItem::Digit(false)] }),
            Some('D') => Ok(Node::Class { negated: false, items: vec![ClassItem::Digit(true)] }),
            Some('w') => Ok(Node::Class { negated: false, items: vec![ClassItem::Word(false)] }),
            Some('W') => Ok(Node::Class { negated: false, items: vec![ClassItem::Word(true)] }),
            Some('s') => Ok(Node::Class { negated: false, items: vec![ClassItem::Space(false)] }),
            Some('S') => Ok(Node::Class { negated: false, items: vec![ClassItem::Space(true)] }),
            Some('n') => Ok(Node::Char('\n')),
            Some('t') => Ok(Node::Char('\t')),
            Some('r') => Ok(Node::Char('\r')),
            Some(c) if !c.is_ascii_alphanumeric() => Ok(Node::Char(c)),
            Some(c) => Err(self.err(&format!("unknown escape `\\{c}`"))),
        }
    }

    fn class(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err(self.err("unclosed character class")),
                Some(']') if !items.is_empty() || negated => break,
                Some(']') if items.is_empty() => {
                    // `[]` would be empty; treat leading `]` as literal.
                    ']'
                }
                Some('\\') => match self.bump() {
                    None => return Err(self.err("trailing backslash in class")),
                    Some('d') => {
                        items.push(ClassItem::Digit(false));
                        continue;
                    }
                    Some('D') => {
                        items.push(ClassItem::Digit(true));
                        continue;
                    }
                    Some('w') => {
                        items.push(ClassItem::Word(false));
                        continue;
                    }
                    Some('W') => {
                        items.push(ClassItem::Word(true));
                        continue;
                    }
                    Some('s') => {
                        items.push(ClassItem::Space(false));
                        continue;
                    }
                    Some('S') => {
                        items.push(ClassItem::Space(true));
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(c) => c,
                },
                Some(c) => c,
            };
            // Possible range `a-z` (but `-` before `]` is literal).
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|n| *n != ']') {
                self.pos += 1;
                let hi = match self.bump() {
                    None => return Err(self.err("unclosed character class")),
                    Some('\\') => self.bump().ok_or_else(|| self.err("trailing backslash"))?,
                    Some(c) => c,
                };
                if hi < c {
                    return Err(self.err("invalid range in class"));
                }
                items.push(ClassItem::Range(c, hi));
            } else {
                items.push(ClassItem::Char(c));
            }
        }
        Ok(Node::Class { negated, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Regex::compile(pattern, "").unwrap().is_match(text)
    }

    #[test]
    fn literals_and_search_semantics() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab c"));
        assert!(m("", "anything"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defx"));
        assert!(m("^abc$", "abc"));
        assert!(!m("^abc$", "abcd"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(!m("a.c", "a\nc"));
        assert!(m("[abc]+", "zzbz"));
        assert!(m("[a-f0-9]+", "deadbeef"));
        assert!(!m("[^a-z]", "abc"));
        assert!(m("[^a-z]", "abc1"));
        assert!(m("[]x]", "]"));
        assert!(m("[a-]", "-"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d{3}", "ab123"));
        assert!(!m(r"^\d+$", "12a"));
        assert!(m(r"\w+@\w+\.com", "mail me at bob@example.com please"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"\$\d+", "$15"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
        assert!(m("a{3}", "aaa"));
        assert!(!m("^a{3}$", "aa"));
        assert!(m("^a{2,}$", "aaaa"));
        assert!(m("^a{1,3}$", "aa"));
        assert!(!m("^a{1,3}$", "aaaa"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("^(cat|dog)$", "cat"));
        assert!(!m("^(cat|dog)$", "cow"));
        assert!(m("^(ab)+$", "ababab"));
        assert!(m("(?:x|y)z", "ayz"));
        assert!(m("^a(b(c|d))?e$", "abce"));
        assert!(m("^a(b(c|d))?e$", "ae"));
    }

    #[test]
    fn case_insensitive_flag() {
        let r = Regex::compile("^HeLLo$", "i").unwrap();
        assert!(r.is_match("hello"));
        assert!(r.is_match("HELLO"));
        let r = Regex::compile("[a-z]+", "i").unwrap();
        assert!(r.is_match("XYZ"));
    }

    #[test]
    fn zero_width_repeat_terminates() {
        assert!(m("(a*)*b", "b"));
        assert!(m("(a?)*b", "aab"));
    }

    #[test]
    fn catastrophic_pattern_bounded() {
        // (a+)+$ on a long non-matching string is the classic blowup; the
        // fuel bound must turn it into a plain "no match".
        let r = Regex::compile("^(a+)+$", "").unwrap();
        let text = "a".repeat(40) + "X";
        assert!(!r.is_match(&text));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::compile("(", "").is_err());
        assert!(Regex::compile(")", "").is_err());
        assert!(Regex::compile("a**", "").is_err());
        assert!(Regex::compile("*a", "").is_err());
        assert!(Regex::compile("[a-", "").is_err());
        assert!(Regex::compile("[z-a]", "").is_err());
        assert!(Regex::compile("a{5,2}", "").is_err());
        assert!(Regex::compile("a{2000}", "").is_err());
        assert!(Regex::compile("\\q", "").is_err());
    }

    #[test]
    fn literal_brace_fallback() {
        assert!(m("a{b", "xa{bx"));
        assert!(m("a{,2}", "a{,2}"));
    }

    #[test]
    fn unicode_literals() {
        assert!(m("héllo", "well héllo there"));
        assert!(m("^.$", "é"));
    }
}
