//! Result ordering for sorted queries.
//!
//! The real-time query engine and the pull-based database engine must sort
//! identically (§5.3, footnote 4): the comparator below is shared by both
//! sides in this workspace, and — as the paper's prototype does — the
//! primary key is appended as the final sort attribute so the sort key is
//! always unambiguous.

use crate::path::resolve_first;
use invalidb_common::{canonical_cmp, Document, Key, SortDirection, SortSpec, Value};
use std::cmp::Ordering;

/// The value a document contributes for one sort key.
///
/// MongoDB array semantics: when the field is an array, the smallest element
/// is used for ascending sorts and the largest for descending; missing
/// fields sort as `Null`.
pub fn sort_value<'a>(doc: &'a Document, path: &str, dir: SortDirection) -> &'a Value {
    const NULL: &Value = &Value::Null;
    match resolve_first(doc, path) {
        None => NULL,
        Some(Value::Array(items)) => {
            let pick = match dir {
                SortDirection::Asc => items.iter().min_by(|a, b| canonical_cmp(a, b)),
                SortDirection::Desc => items.iter().max_by(|a, b| canonical_cmp(a, b)),
            };
            pick.unwrap_or(NULL)
        }
        Some(v) => v,
    }
}

/// Compares two `(key, document)` pairs under a sort specification, with the
/// primary key as implicit final (ascending) tiebreak.
pub fn compare_items(sort: &SortSpec, a: (&Key, &Document), b: (&Key, &Document)) -> Ordering {
    for (path, dir) in sort {
        let va = sort_value(a.1, path, *dir);
        let vb = sort_value(b.1, path, *dir);
        let ord = canonical_cmp(va, vb);
        let ord = match dir {
            SortDirection::Asc => ord,
            SortDirection::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.0.cmp(b.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn item(key: i64, year: i64, title: &str) -> (Key, Document) {
        (Key::of(key), doc! { "year" => year, "title" => title })
    }

    fn sorted(spec: &SortSpec, mut items: Vec<(Key, Document)>) -> Vec<i64> {
        items.sort_by(|a, b| compare_items(spec, (&a.0, &a.1), (&b.0, &b.1)));
        items
            .iter()
            .map(|(k, _)| match &k.0 {
                Value::Int(i) => *i,
                _ => panic!("int keys only"),
            })
            .collect()
    }

    #[test]
    fn single_key_descending_with_pk_tiebreak() {
        // Figure 3's query: ORDER BY year DESC; ties broken by key.
        let spec: SortSpec = vec![("year".into(), SortDirection::Desc)];
        let items = vec![
            item(5, 2018, "DB Fun"),
            item(8, 2018, "No SQL!"),
            item(3, 2017, "BaaS For Dummies"),
            item(4, 2017, "Query Languages"),
            item(7, 2016, "Streams in Action"),
            item(9, 2016, "SaaS For Dummies"),
        ];
        assert_eq!(sorted(&spec, items), vec![5, 8, 3, 4, 7, 9]);
    }

    #[test]
    fn multi_attribute_sort() {
        let spec: SortSpec =
            vec![("year".into(), SortDirection::Asc), ("title".into(), SortDirection::Desc)];
        let items = vec![item(1, 2018, "A"), item(2, 2017, "B"), item(3, 2017, "C")];
        assert_eq!(sorted(&spec, items), vec![3, 2, 1]);
    }

    #[test]
    fn missing_field_sorts_as_null_first_ascending() {
        let spec: SortSpec = vec![("year".into(), SortDirection::Asc)];
        let items = vec![item(1, 2018, "A"), (Key::of(2i64), doc! { "title" => "no year" })];
        assert_eq!(sorted(&spec, items), vec![2, 1]);
    }

    #[test]
    fn array_fields_use_min_for_asc_max_for_desc() {
        let d = doc! { "scores" => vec![5i64, 1, 9] };
        assert_eq!(sort_value(&d, "scores", SortDirection::Asc), &Value::Int(1));
        assert_eq!(sort_value(&d, "scores", SortDirection::Desc), &Value::Int(9));
        let empty = doc! { "scores" => Vec::<i64>::new() };
        assert_eq!(sort_value(&empty, "scores", SortDirection::Asc), &Value::Null);
    }

    #[test]
    fn comparator_is_total_and_antisymmetric() {
        let spec: SortSpec = vec![("year".into(), SortDirection::Desc)];
        let a = item(1, 2018, "A");
        let b = item(2, 2018, "B");
        let ab = compare_items(&spec, (&a.0, &a.1), (&b.0, &b.1));
        let ba = compare_items(&spec, (&b.0, &b.1), (&a.0, &a.1));
        assert_eq!(ab, ba.reverse());
        let aa = compare_items(&spec, (&a.0, &a.1), (&a.0, &a.1));
        assert_eq!(aa, Ordering::Equal);
    }

    #[test]
    fn empty_sort_spec_orders_by_key() {
        let spec: SortSpec = vec![];
        let items = vec![item(9, 0, ""), item(1, 0, ""), item(5, 0, "")];
        assert_eq!(sorted(&spec, items), vec![1, 5, 9]);
    }

    #[test]
    fn cross_type_sorting_follows_brackets() {
        let spec: SortSpec = vec![("v".into(), SortDirection::Asc)];
        let items = vec![
            (Key::of(1i64), doc! { "v" => "str" }),
            (Key::of(2i64), doc! { "v" => 5i64 }),
            (Key::of(3i64), doc! { "v" => Value::Null }),
            (Key::of(4i64), doc! { "v" => true }),
        ];
        assert_eq!(sorted(&spec, items), vec![3, 2, 1, 4]);
    }
}
