//! Geo query predicates: `$geoWithin` and `$nearSphere` (§5.4).
//!
//! Points use MongoDB's legacy coordinate convention `[longitude, latitude]`
//! (also accepted: `{ "lon": .., "lat": .. }`). Supported shapes:
//!
//! * `$box` — planar rectangle `[[minLon, minLat], [maxLon, maxLat]]`;
//! * `$center` — planar circle `[[lon, lat], radiusDegrees]`;
//! * `$centerSphere` — spherical circle `[[lon, lat], radiusRadians]`;
//! * `$polygon` — planar polygon (ray casting, boundary-inclusive corners).
//!
//! `$nearSphere` filters by haversine distance with `$maxDistance` (meters).
//! Ordering by distance is a pull-query concern; for push-based matching the
//! predicate form is what the matching nodes evaluate.

use invalidb_common::Value;

/// Mean Earth radius in meters (as used by MongoDB's spherical model).
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A geographic point (`longitude`, `latitude`), degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Longitude in degrees.
    pub lon: f64,
    /// Latitude in degrees.
    pub lat: f64,
}

impl Point {
    /// Parses a point from `[lon, lat]` or `{lon: .., lat: ..}`.
    pub fn parse(v: &Value) -> Option<Point> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Some(Point { lon: items[0].as_f64()?, lat: items[1].as_f64()? })
            }
            Value::Object(doc) => {
                Some(Point { lon: doc.get("lon")?.as_f64()?, lat: doc.get("lat")?.as_f64()? })
            }
            _ => None,
        }
    }
}

/// A compiled `$geoWithin` shape.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoShape {
    /// Planar rectangle.
    Box {
        /// Lower-left corner.
        min: Point,
        /// Upper-right corner.
        max: Point,
    },
    /// Planar circle with radius in degrees.
    Center {
        /// Circle center.
        center: Point,
        /// Radius in coordinate degrees.
        radius_deg: f64,
    },
    /// Spherical circle with radius in radians.
    CenterSphere {
        /// Circle center.
        center: Point,
        /// Radius in radians (distance / Earth radius).
        radius_rad: f64,
    },
    /// Planar polygon (at least 3 vertices).
    Polygon {
        /// Polygon vertices in order.
        vertices: Vec<Point>,
    },
}

impl GeoShape {
    /// True if the point lies within the shape.
    pub fn contains(&self, p: Point) -> bool {
        match self {
            GeoShape::Box { min, max } => {
                p.lon >= min.lon && p.lon <= max.lon && p.lat >= min.lat && p.lat <= max.lat
            }
            GeoShape::Center { center, radius_deg } => {
                let dx = p.lon - center.lon;
                let dy = p.lat - center.lat;
                (dx * dx + dy * dy).sqrt() <= *radius_deg
            }
            GeoShape::CenterSphere { center, radius_rad } => {
                haversine_m(*center, p) <= radius_rad * EARTH_RADIUS_M
            }
            GeoShape::Polygon { vertices } => point_in_polygon(p, vertices),
        }
    }
}

/// Great-circle distance between two points, meters (haversine formula).
pub fn haversine_m(a: Point, b: Point) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().min(1.0).asin()
}

/// Ray-casting point-in-polygon (even-odd rule); points exactly on a vertex
/// count as inside.
fn point_in_polygon(p: Point, vertices: &[Point]) -> bool {
    if vertices.len() < 3 {
        return false;
    }
    if vertices.iter().any(|v| v.lon == p.lon && v.lat == p.lat) {
        return true;
    }
    let mut inside = false;
    let mut j = vertices.len() - 1;
    for i in 0..vertices.len() {
        let (vi, vj) = (vertices[i], vertices[j]);
        let crosses = (vi.lat > p.lat) != (vj.lat > p.lat);
        if crosses {
            let x = (vj.lon - vi.lon) * (p.lat - vi.lat) / (vj.lat - vi.lat) + vi.lon;
            if p.lon < x {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn pt(lon: f64, lat: f64) -> Point {
        Point { lon, lat }
    }

    #[test]
    fn parse_point_forms() {
        assert_eq!(Point::parse(&Value::from(vec![10.0f64, 53.5])), Some(pt(10.0, 53.5)));
        assert_eq!(
            Point::parse(&Value::Object(doc! { "lon" => 10.0f64, "lat" => 53.5f64 })),
            Some(pt(10.0, 53.5))
        );
        assert_eq!(Point::parse(&Value::from(vec![10.0f64])), None);
        assert_eq!(Point::parse(&Value::from("nope")), None);
    }

    #[test]
    fn box_containment() {
        let b = GeoShape::Box { min: pt(0.0, 0.0), max: pt(10.0, 10.0) };
        assert!(b.contains(pt(5.0, 5.0)));
        assert!(b.contains(pt(0.0, 10.0)), "boundary inclusive");
        assert!(!b.contains(pt(-0.1, 5.0)));
        assert!(!b.contains(pt(5.0, 10.1)));
    }

    #[test]
    fn center_containment() {
        let c = GeoShape::Center { center: pt(0.0, 0.0), radius_deg: 1.0 };
        assert!(c.contains(pt(0.5, 0.5)));
        assert!(c.contains(pt(1.0, 0.0)));
        assert!(!c.contains(pt(1.0, 1.0)));
    }

    #[test]
    fn haversine_known_distance() {
        // Hamburg (9.99, 53.55) to Berlin (13.40, 52.52): ~255 km.
        let d = haversine_m(pt(9.99, 53.55), pt(13.40, 52.52));
        assert!((d - 255_000.0).abs() < 5_000.0, "got {d}");
        assert_eq!(haversine_m(pt(1.0, 2.0), pt(1.0, 2.0)), 0.0);
    }

    #[test]
    fn center_sphere_containment() {
        // 300 km radius around Hamburg includes Berlin (~255 km)...
        let s =
            GeoShape::CenterSphere { center: pt(9.99, 53.55), radius_rad: 300_000.0 / EARTH_RADIUS_M };
        assert!(s.contains(pt(13.40, 52.52)));
        // ...but not Munich (~610 km).
        assert!(!s.contains(pt(11.58, 48.14)));
    }

    #[test]
    fn polygon_containment() {
        let square =
            GeoShape::Polygon { vertices: vec![pt(0.0, 0.0), pt(4.0, 0.0), pt(4.0, 4.0), pt(0.0, 4.0)] };
        assert!(square.contains(pt(2.0, 2.0)));
        assert!(!square.contains(pt(5.0, 2.0)));
        assert!(square.contains(pt(0.0, 0.0)), "vertex counts as inside");
        // Concave polygon: arrow shape.
        let arrow = GeoShape::Polygon {
            vertices: vec![pt(0.0, 0.0), pt(4.0, 0.0), pt(2.0, 2.0), pt(4.0, 4.0), pt(0.0, 4.0)],
        };
        assert!(arrow.contains(pt(1.0, 2.0)));
        assert!(!arrow.contains(pt(3.5, 2.0)), "inside the notch");
    }

    #[test]
    fn degenerate_polygon_rejected() {
        let line = GeoShape::Polygon { vertices: vec![pt(0.0, 0.0), pt(1.0, 1.0)] };
        assert!(!line.contains(pt(0.5, 0.5)));
    }
}
