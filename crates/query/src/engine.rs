//! The pluggable query engine (§5.3).
//!
//! InvaliDB is database-agnostic: everything specific to the underlying
//! datastore's query language lives behind the [`QueryEngine`] trait —
//! (1) parsing queries, (2) interpreting after-images, (3) computing the
//! matching decision, and (4) sorting results according to database
//! semantics. The cluster, event layer and partitioning scheme only ever
//! see [`QuerySpec`]s and [`PreparedQuery`] handles.
//!
//! Two implementations ship with the workspace:
//!
//! * [`MongoQueryEngine`] — the full MongoDB-compatible engine (filters,
//!   regex, text, geo, multi-attribute sort);
//! * [`KvQueryEngine`] — a deliberately minimal engine supporting only
//!   conjunctive equality, demonstrating that a different datastore's
//!   semantics can be plugged in without touching the cluster.

use crate::filter::Filter;
use crate::parse::{parse_filter, FilterParseError};
use crate::predicate::{decompose, predicate_hash, PredicateHash};
use crate::sort::compare_items;
use invalidb_common::{canonical_eq, Document, Key, QuerySpec, Value};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Error preparing a query for execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The filter document is malformed.
    Parse(FilterParseError),
    /// The engine does not support this query shape.
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Unsupported(what) => write!(f, "unsupported by this engine: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<FilterParseError> for EngineError {
    fn from(e: FilterParseError) -> Self {
        EngineError::Parse(e)
    }
}

/// One compiled atomic conjunct of a prepared query, evaluable standalone.
/// Atoms with equal [`PredicateHash`]es compute the same function (within
/// one engine), which is what lets the filtering stage evaluate a predicate
/// once per write no matter how many queries contain it.
pub struct PreparedAtom {
    hash: PredicateHash,
    eval: Box<dyn Fn(&Document) -> bool + Send + Sync>,
}

impl PreparedAtom {
    /// Hash-consed identity of this predicate (see [`crate::predicate`]).
    pub fn hash(&self) -> PredicateHash {
        self.hash
    }

    /// Evaluates just this conjunct against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        (self.eval)(doc)
    }
}

impl fmt::Debug for PreparedAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PreparedAtom({:#018x})", self.hash.0)
    }
}

/// A query compiled for repeated evaluation against after-images.
pub trait PreparedQuery: Send + Sync {
    /// The wire-form query this was prepared from.
    fn spec(&self) -> &QuerySpec;

    /// Does the document match the query's filter predicates?
    fn matches(&self, doc: &Document) -> bool;

    /// The filter as compiled atomic conjuncts, when the engine supports
    /// shared predicate evaluation: `matches(doc)` is exactly
    /// `conjuncts().iter().all(|a| a.matches(doc))` (an empty slice matches
    /// everything). `None` opts out — the query is only evaluable whole.
    fn conjuncts(&self) -> Option<&[PreparedAtom]> {
        None
    }

    /// Orders two result items according to the query's sort specification
    /// (with the primary key as unambiguous final tiebreak).
    fn cmp_items(&self, a: (&Key, &Document), b: (&Key, &Document)) -> Ordering;
}

/// Factory for [`PreparedQuery`] values — one implementation per supported
/// database dialect.
pub trait QueryEngine: Send + Sync {
    /// Engine name (for logs and capability matrices).
    fn name(&self) -> &'static str;

    /// Compiles a wire-form query.
    fn prepare(&self, spec: &QuerySpec) -> Result<Arc<dyn PreparedQuery>, EngineError>;
}

/// The MongoDB-compatible engine used by the production deployment (§5.4).
#[derive(Debug, Default, Clone, Copy)]
pub struct MongoQueryEngine;

impl QueryEngine for MongoQueryEngine {
    fn name(&self) -> &'static str {
        "mongo"
    }

    fn prepare(&self, spec: &QuerySpec) -> Result<Arc<dyn PreparedQuery>, EngineError> {
        let filter = parse_filter(&spec.filter)?;
        // Compile the canonical conjuncts individually for shared predicate
        // evaluation. Decomposition is semantics-preserving, so each atom
        // must parse whenever the whole filter did; if one somehow does
        // not, fall back to whole-filter evaluation rather than failing.
        let mut atoms = Vec::new();
        let mut complete = true;
        for atom in decompose(&spec.filter) {
            match parse_filter(&atom.doc) {
                Ok(compiled) => atoms.push(PreparedAtom {
                    hash: atom.hash,
                    eval: Box::new(move |doc| compiled.matches(doc)),
                }),
                Err(_) => {
                    complete = false;
                    break;
                }
            }
        }
        let atoms = complete.then_some(atoms);
        Ok(Arc::new(MongoPrepared { spec: spec.clone(), filter, atoms }))
    }
}

struct MongoPrepared {
    spec: QuerySpec,
    filter: Filter,
    /// Compiled canonical conjuncts (`None` if decomposition failed).
    atoms: Option<Vec<PreparedAtom>>,
}

impl PreparedQuery for MongoPrepared {
    fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    fn matches(&self, doc: &Document) -> bool {
        self.filter.matches(doc)
    }

    fn conjuncts(&self) -> Option<&[PreparedAtom]> {
        self.atoms.as_deref()
    }

    fn cmp_items(&self, a: (&Key, &Document), b: (&Key, &Document)) -> Ordering {
        compare_items(&self.spec.sort, a, b)
    }
}

/// A minimal key-value-style engine: conjunctive top-level equality only,
/// no sort/limit/offset. Exists to prove engine pluggability end to end.
#[derive(Debug, Default, Clone, Copy)]
pub struct KvQueryEngine;

impl QueryEngine for KvQueryEngine {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn prepare(&self, spec: &QuerySpec) -> Result<Arc<dyn PreparedQuery>, EngineError> {
        if spec.needs_sorting_stage() {
            return Err(EngineError::Unsupported("sort/limit/offset".into()));
        }
        let mut conditions = Vec::with_capacity(spec.filter.len());
        for (k, v) in spec.filter.iter() {
            if k.starts_with('$') {
                return Err(EngineError::Unsupported(format!("operator `{k}`")));
            }
            match v {
                Value::Object(_) | Value::Array(_) => {
                    return Err(EngineError::Unsupported("non-scalar equality".into()))
                }
                scalar => conditions.push((k.to_owned(), scalar.clone())),
            }
        }
        // Each equality condition is one atom; atom hashes are only ever
        // compared within one engine, so kv semantics (strict path lookup,
        // no array fan-out) never mix with mongo's for the same document.
        let atoms = conditions
            .iter()
            .map(|(path, want)| {
                let mut single = Document::with_capacity(1);
                single.insert(path.clone(), want.clone());
                let hash = predicate_hash(&single);
                let (path, want) = (path.clone(), want.clone());
                PreparedAtom {
                    hash,
                    eval: Box::new(move |doc: &Document| {
                        doc.get_path(&path).is_some_and(|got| canonical_eq(got, &want))
                    }),
                }
            })
            .collect();
        Ok(Arc::new(KvPrepared { spec: spec.clone(), conditions, atoms }))
    }
}

struct KvPrepared {
    spec: QuerySpec,
    conditions: Vec<(String, Value)>,
    atoms: Vec<PreparedAtom>,
}

impl PreparedQuery for KvPrepared {
    fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    fn matches(&self, doc: &Document) -> bool {
        self.conditions
            .iter()
            .all(|(path, want)| doc.get_path(path).is_some_and(|got| canonical_eq(got, want)))
    }

    fn conjuncts(&self) -> Option<&[PreparedAtom]> {
        Some(&self.atoms)
    }

    fn cmp_items(&self, a: (&Key, &Document), b: (&Key, &Document)) -> Ordering {
        a.0.cmp(b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, SortDirection};

    #[test]
    fn mongo_engine_prepares_and_matches() {
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 10i64 } });
        let q = MongoQueryEngine.prepare(&spec).unwrap();
        assert!(q.matches(&doc! { "n" => 15i64 }));
        assert!(!q.matches(&doc! { "n" => 5i64 }));
        assert_eq!(q.spec(), &spec);
    }

    #[test]
    fn mongo_engine_rejects_bad_filters() {
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$bogus" => 1i64 } });
        assert!(matches!(MongoQueryEngine.prepare(&spec), Err(EngineError::Parse(_))));
    }

    #[test]
    fn mongo_engine_sorts_with_pk_tiebreak() {
        let spec = QuerySpec::filter("t", doc! {}).sorted_by("year", SortDirection::Desc);
        let q = MongoQueryEngine.prepare(&spec).unwrap();
        let (ka, da) = (Key::of(1i64), doc! { "year" => 2018i64 });
        let (kb, db) = (Key::of(2i64), doc! { "year" => 2018i64 });
        assert_eq!(q.cmp_items((&ka, &da), (&kb, &db)), Ordering::Less);
    }

    #[test]
    fn kv_engine_supports_only_flat_equality() {
        let ok = QuerySpec::filter("t", doc! { "a" => 1i64, "b" => "x" });
        let q = KvQueryEngine.prepare(&ok).unwrap();
        assert!(q.matches(&doc! { "a" => 1i64, "b" => "x", "extra" => 0i64 }));
        assert!(!q.matches(&doc! { "a" => 2i64, "b" => "x" }));

        let sorted = QuerySpec::filter("t", doc! {}).sorted_by("a", SortDirection::Asc);
        assert!(matches!(KvQueryEngine.prepare(&sorted), Err(EngineError::Unsupported(_))));
        let op = QuerySpec::filter("t", doc! { "a" => doc! { "$gt" => 1i64 } });
        assert!(KvQueryEngine.prepare(&op).is_err());
        let top = QuerySpec::filter("t", doc! { "$or" => Vec::<Value>::new() });
        assert!(KvQueryEngine.prepare(&top).is_err());
    }

    #[test]
    fn conjunct_product_equals_whole_filter() {
        let filters = [
            doc! { "status" => "open", "price" => doc! { "$gt" => 10i64, "$lt" => 100i64 } },
            doc! { "a" => doc! { "$in" => vec![1i64, 2, 3] }, "b" => doc! { "$exists" => true } },
            doc! { "$or" => vec![
                Value::Object(doc! { "x" => 1i64 }),
                Value::Object(doc! { "y" => doc! { "$gte" => 5i64 } }),
            ], "z" => doc! { "$ne" => 0i64 } },
            doc! { "name" => doc! { "$regex" => "^ab", "$options" => "i" } },
            doc! {},
        ];
        let docs = [
            doc! { "status" => "open", "price" => 50i64, "a" => 2i64, "b" => 1i64, "z" => 1i64 },
            doc! { "status" => "open", "price" => 200i64, "x" => 1i64, "z" => 0i64 },
            doc! { "price" => Value::from(vec![5i64, 50]), "y" => 7i64, "name" => "Abel", "z" => 3i64 },
            doc! { "a" => Value::from(vec![3i64]), "b" => Value::Null },
        ];
        for f in &filters {
            let q = MongoQueryEngine.prepare(&QuerySpec::filter("t", f.clone())).unwrap();
            let atoms = q.conjuncts().expect("mongo queries decompose");
            for d in &docs {
                let whole = q.matches(d);
                let product = atoms.iter().all(|a| a.matches(d));
                assert_eq!(whole, product, "filter {f} doc {d}");
            }
        }
        // Kv engine: same invariant under its own semantics.
        let kv = KvQueryEngine.prepare(&QuerySpec::filter("t", doc! { "a" => 1i64, "b" => "x" })).unwrap();
        let atoms = kv.conjuncts().unwrap();
        assert_eq!(atoms.len(), 2);
        for d in [doc! { "a" => 1i64, "b" => "x" }, doc! { "a" => 1i64 }, doc! {}] {
            assert_eq!(kv.matches(&d), atoms.iter().all(|a| a.matches(&d)), "doc {d}");
        }
    }

    #[test]
    fn engines_are_object_safe() {
        let engines: Vec<Box<dyn QueryEngine>> =
            vec![Box::new(MongoQueryEngine), Box::new(KvQueryEngine)];
        let spec = QuerySpec::filter("t", doc! { "a" => 1i64 });
        for e in &engines {
            let q = e.prepare(&spec).unwrap();
            assert!(q.matches(&doc! { "a" => 1i64 }));
        }
        assert_eq!(engines[0].name(), "mongo");
        assert_eq!(engines[1].name(), "kv");
    }
}
