//! Parses MongoDB-style filter documents into the [`Filter`] AST.

use crate::filter::{FieldPred, Filter};
use crate::geo::{GeoShape, Point};
use crate::regex::Regex;
use crate::text::TextQuery;
use invalidb_common::{Document, Value};
use std::fmt;

/// Filter parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    /// What is wrong with the filter document.
    pub message: String,
}

impl FilterParseError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter: {}", self.message)
    }
}

impl std::error::Error for FilterParseError {}

type Result<T> = std::result::Result<T, FilterParseError>;

/// Parses a filter document (e.g. `{age: {$gte: 18}, $or: [...]}`).
pub fn parse_filter(doc: &Document) -> Result<Filter> {
    let mut clauses = Vec::new();
    for (key, value) in doc.iter() {
        match key {
            "$and" => clauses.push(Filter::And(parse_filter_list(value, "$and")?)),
            "$or" => clauses.push(Filter::Or(parse_filter_list(value, "$or")?)),
            "$nor" => clauses.push(Filter::Nor(parse_filter_list(value, "$nor")?)),
            "$text" => clauses.push(parse_text(value)?),
            k if k.starts_with('$') => {
                return Err(FilterParseError::new(format!("unsupported top-level operator `{k}`")));
            }
            path => clauses.push(parse_field(path, value)?),
        }
    }
    Ok(match clauses.len() {
        0 => Filter::True,
        1 => clauses.pop().expect("one clause"),
        _ => Filter::And(clauses),
    })
}

fn parse_filter_list(value: &Value, op: &str) -> Result<Vec<Filter>> {
    let items =
        value.as_array().ok_or_else(|| FilterParseError::new(format!("`{op}` expects an array")))?;
    if items.is_empty() {
        return Err(FilterParseError::new(format!("`{op}` must not be empty")));
    }
    items
        .iter()
        .map(|v| {
            v.as_object()
                .ok_or_else(|| FilterParseError::new(format!("`{op}` operands must be objects")))
                .and_then(parse_filter)
        })
        .collect()
}

fn parse_text(value: &Value) -> Result<Filter> {
    let obj = value.as_object().ok_or_else(|| FilterParseError::new("`$text` expects an object"))?;
    let search = obj
        .get("$search")
        .and_then(Value::as_str)
        .ok_or_else(|| FilterParseError::new("`$text` requires a `$search` string"))?;
    Ok(Filter::Text(TextQuery::parse(search)))
}

fn parse_field(path: &str, value: &Value) -> Result<Filter> {
    let preds = match value {
        Value::Object(obj) if has_operator_keys(obj) => parse_pred_object(obj)?,
        literal => vec![FieldPred::Eq(literal.clone())],
    };
    Ok(Filter::Field { path: path.to_owned(), preds })
}

fn has_operator_keys(obj: &Document) -> bool {
    obj.keys().any(|k| k.starts_with('$'))
}

/// Parses an operator object like `{$gt: 5, $lt: 9}` into predicates.
fn parse_pred_object(obj: &Document) -> Result<Vec<FieldPred>> {
    if !obj.keys().all(|k| k.starts_with('$')) {
        return Err(FilterParseError::new(
            "cannot mix operators and plain fields in one predicate object",
        ));
    }
    let mut preds = Vec::with_capacity(obj.len());
    // `$options` and `$maxDistance` are consumed by their partner operators.
    for (op, v) in obj.iter() {
        match op {
            "$eq" => preds.push(FieldPred::Eq(v.clone())),
            "$ne" => preds.push(FieldPred::Ne(v.clone())),
            "$gt" => preds.push(FieldPred::Gt(v.clone())),
            "$gte" => preds.push(FieldPred::Gte(v.clone())),
            "$lt" => preds.push(FieldPred::Lt(v.clone())),
            "$lte" => preds.push(FieldPred::Lte(v.clone())),
            "$in" => preds.push(FieldPred::In(expect_array(v, "$in")?)),
            "$nin" => preds.push(FieldPred::Nin(expect_array(v, "$nin")?)),
            "$exists" => preds.push(FieldPred::Exists(expect_bool_ish(v)?)),
            "$mod" => {
                let arr = expect_array(v, "$mod")?;
                if arr.len() != 2 {
                    return Err(FilterParseError::new("`$mod` expects [divisor, remainder]"));
                }
                let d = arr[0]
                    .as_i64()
                    .ok_or_else(|| FilterParseError::new("`$mod` divisor must be an integer"))?;
                let r = arr[1]
                    .as_i64()
                    .ok_or_else(|| FilterParseError::new("`$mod` remainder must be an integer"))?;
                if d == 0 {
                    return Err(FilterParseError::new("`$mod` divisor must not be zero"));
                }
                preds.push(FieldPred::Mod(d, r));
            }
            "$size" => {
                let n = v
                    .as_i64()
                    .filter(|n| *n >= 0)
                    .ok_or_else(|| FilterParseError::new("`$size` expects a non-negative integer"))?;
                preds.push(FieldPred::Size(n));
            }
            "$all" => preds.push(FieldPred::All(expect_array(v, "$all")?)),
            "$elemMatch" => {
                let inner = v
                    .as_object()
                    .ok_or_else(|| FilterParseError::new("`$elemMatch` expects an object"))?;
                if has_operator_keys(inner) {
                    preds.push(FieldPred::ElemMatchPreds(parse_pred_object(inner)?));
                } else {
                    preds.push(FieldPred::ElemMatchFilter(Box::new(parse_filter(inner)?)));
                }
            }
            "$regex" => {
                let pattern = v
                    .as_str()
                    .ok_or_else(|| FilterParseError::new("`$regex` expects a pattern string"))?;
                let flags = obj.get("$options").and_then(Value::as_str).unwrap_or("");
                let re = Regex::compile(pattern, flags)
                    .map_err(|e| FilterParseError::new(format!("`$regex`: {e}")))?;
                preds.push(FieldPred::Regex(re));
            }
            "$options" => {
                if !obj.contains_key("$regex") {
                    return Err(FilterParseError::new("`$options` requires `$regex`"));
                }
            }
            "$not" => match v {
                Value::Object(inner) if has_operator_keys(inner) => {
                    preds.push(FieldPred::Not(parse_pred_object(inner)?));
                }
                Value::String(pattern) => {
                    // MongoDB also allows `$not: /regex/`; our wire form is a string.
                    let re = Regex::compile(pattern, "")
                        .map_err(|e| FilterParseError::new(format!("`$not` regex: {e}")))?;
                    preds.push(FieldPred::Not(vec![FieldPred::Regex(re)]));
                }
                _ => return Err(FilterParseError::new("`$not` expects an operator object or regex")),
            },
            "$type" => {
                let name = v
                    .as_str()
                    .ok_or_else(|| FilterParseError::new("`$type` expects a type name string"))?;
                const KNOWN: &[&str] = &["null", "bool", "int", "float", "string", "array", "object"];
                if !KNOWN.contains(&name) {
                    return Err(FilterParseError::new(format!("unknown `$type` name `{name}`")));
                }
                preds.push(FieldPred::Type(name.to_owned()));
            }
            "$geoWithin" => preds.push(FieldPred::GeoWithin(parse_geo_within(v)?)),
            "$nearSphere" => {
                let center = Point::parse(v)
                    .ok_or_else(|| FilterParseError::new("`$nearSphere` expects a point"))?;
                let max = obj.get("$maxDistance").and_then(Value::as_f64).ok_or_else(|| {
                    FilterParseError::new("`$nearSphere` requires `$maxDistance` (meters)")
                })?;
                preds.push(FieldPred::NearSphere { center, max_distance_m: max });
            }
            "$maxDistance" => {
                if !obj.contains_key("$nearSphere") {
                    return Err(FilterParseError::new("`$maxDistance` requires `$nearSphere`"));
                }
            }
            other => return Err(FilterParseError::new(format!("unsupported operator `{other}`"))),
        }
    }
    Ok(preds)
}

fn parse_geo_within(v: &Value) -> Result<GeoShape> {
    let obj = v.as_object().ok_or_else(|| FilterParseError::new("`$geoWithin` expects an object"))?;
    if let Some(b) = obj.get("$box") {
        let pts = parse_points(b, 2, "$box")?;
        return Ok(GeoShape::Box { min: pts[0], max: pts[1] });
    }
    if let Some(c) = obj.get("$center") {
        let (center, radius) = parse_circle(c, "$center")?;
        return Ok(GeoShape::Center { center, radius_deg: radius });
    }
    if let Some(c) = obj.get("$centerSphere") {
        let (center, radius) = parse_circle(c, "$centerSphere")?;
        return Ok(GeoShape::CenterSphere { center, radius_rad: radius });
    }
    if let Some(p) = obj.get("$polygon") {
        let arr = p
            .as_array()
            .ok_or_else(|| FilterParseError::new("`$polygon` expects an array of points"))?;
        if arr.len() < 3 {
            return Err(FilterParseError::new("`$polygon` needs at least 3 vertices"));
        }
        let vertices = arr
            .iter()
            .map(|v| Point::parse(v).ok_or_else(|| FilterParseError::new("invalid `$polygon` vertex")))
            .collect::<Result<Vec<_>>>()?;
        return Ok(GeoShape::Polygon { vertices });
    }
    Err(FilterParseError::new("`$geoWithin` needs $box, $center, $centerSphere or $polygon"))
}

fn parse_points(v: &Value, n: usize, op: &str) -> Result<Vec<Point>> {
    let arr = v.as_array().ok_or_else(|| FilterParseError::new(format!("`{op}` expects an array")))?;
    if arr.len() != n {
        return Err(FilterParseError::new(format!("`{op}` expects {n} points")));
    }
    arr.iter()
        .map(|v| {
            Point::parse(v).ok_or_else(|| FilterParseError::new(format!("invalid point in `{op}`")))
        })
        .collect()
}

fn parse_circle(v: &Value, op: &str) -> Result<(Point, f64)> {
    let arr =
        v.as_array().ok_or_else(|| FilterParseError::new(format!("`{op}` expects [center, radius]")))?;
    if arr.len() != 2 {
        return Err(FilterParseError::new(format!("`{op}` expects [center, radius]")));
    }
    let center = Point::parse(&arr[0])
        .ok_or_else(|| FilterParseError::new(format!("invalid center in `{op}`")))?;
    let radius = arr[1]
        .as_f64()
        .filter(|r| *r >= 0.0)
        .ok_or_else(|| FilterParseError::new(format!("invalid radius in `{op}`")))?;
    Ok((center, radius))
}

fn expect_array(v: &Value, op: &str) -> Result<Vec<Value>> {
    v.as_array()
        .map(|a| a.to_vec())
        .ok_or_else(|| FilterParseError::new(format!("`{op}` expects an array")))
}

fn expect_bool_ish(v: &Value) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Int(i) => Ok(*i != 0),
        _ => Err(FilterParseError::new("`$exists` expects a boolean")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn matches(filter_json: &str, doc_json: &str) -> bool {
        let filter_doc = invalidb_json::parse_document(filter_json).unwrap();
        let doc = invalidb_json::parse_document(doc_json).unwrap();
        parse_filter(&filter_doc).unwrap().matches(&doc)
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(matches("{}", r#"{"a": 1}"#));
    }

    #[test]
    fn implicit_and_across_fields() {
        assert!(matches(r#"{"a": 1, "b": {"$gt": 5}}"#, r#"{"a": 1, "b": 9}"#));
        assert!(!matches(r#"{"a": 1, "b": {"$gt": 5}}"#, r#"{"a": 1, "b": 3}"#));
    }

    #[test]
    fn logical_operators() {
        let q = r#"{"$or": [{"a": 1}, {"$and": [{"b": 2}, {"c": 3}]}]}"#;
        assert!(matches(q, r#"{"a": 1}"#));
        assert!(matches(q, r#"{"b": 2, "c": 3}"#));
        assert!(!matches(q, r#"{"b": 2}"#));
        assert!(matches(r#"{"$nor": [{"a": 1}]}"#, r#"{"a": 2}"#));
    }

    #[test]
    fn comparison_operators() {
        assert!(matches(r#"{"n": {"$gte": 10, "$lt": 20}}"#, r#"{"n": 10}"#));
        assert!(!matches(r#"{"n": {"$gte": 10, "$lt": 20}}"#, r#"{"n": 20}"#));
        assert!(matches(r#"{"n": {"$ne": 5}}"#, r#"{"n": 4}"#));
        assert!(matches(r#"{"n": {"$in": [1, 2, 3]}}"#, r#"{"n": 2}"#));
        assert!(matches(r#"{"n": {"$nin": [1, 2]}}"#, r#"{"n": 9}"#));
    }

    #[test]
    fn regex_with_options() {
        assert!(matches(
            r#"{"name": {"$regex": "^wing", "$options": "i"}}"#,
            r#"{"name": "Wingerath"}"#
        ));
        assert!(!matches(r#"{"name": {"$regex": "^wing"}}"#, r#"{"name": "Wingerath"}"#));
    }

    #[test]
    fn elem_match_both_forms() {
        let scalar = r#"{"scores": {"$elemMatch": {"$gte": 80, "$lt": 90}}}"#;
        assert!(matches(scalar, r#"{"scores": [70, 85]}"#));
        assert!(!matches(scalar, r#"{"scores": [70, 95]}"#));
        let object = r#"{"items": {"$elemMatch": {"qty": {"$gt": 5}, "sku": "x"}}}"#;
        assert!(matches(object, r#"{"items": [{"sku": "x", "qty": 7}]}"#));
        assert!(!matches(object, r#"{"items": [{"sku": "x", "qty": 1}, {"sku": "y", "qty": 9}]}"#));
    }

    #[test]
    fn text_operator() {
        assert!(matches(r#"{"$text": {"$search": "coffee"}}"#, r#"{"title": "Coffee time"}"#));
        assert!(!matches(r#"{"$text": {"$search": "-coffee tea"}}"#, r#"{"title": "coffee tea"}"#));
    }

    #[test]
    fn geo_operators() {
        let q = r#"{"loc": {"$geoWithin": {"$box": [[0, 0], [10, 10]]}}}"#;
        assert!(matches(q, r#"{"loc": [5, 5]}"#));
        assert!(!matches(q, r#"{"loc": [15, 5]}"#));
        let near = r#"{"loc": {"$nearSphere": [10.0, 53.5], "$maxDistance": 50000}}"#;
        assert!(matches(near, r#"{"loc": [10.1, 53.6]}"#));
        assert!(!matches(near, r#"{"loc": [0.0, 0.0]}"#));
        let poly = r#"{"loc": {"$geoWithin": {"$polygon": [[0,0],[4,0],[4,4],[0,4]]}}}"#;
        assert!(matches(poly, r#"{"loc": [2, 2]}"#));
    }

    #[test]
    fn not_operator() {
        assert!(matches(r#"{"n": {"$not": {"$gt": 5}}}"#, r#"{"n": 3}"#));
        assert!(!matches(r#"{"n": {"$not": {"$gt": 5}}}"#, r#"{"n": 9}"#));
        assert!(matches(r#"{"name": {"$not": "^a"}}"#, r#"{"name": "beta"}"#));
    }

    #[test]
    fn exists_and_type() {
        assert!(matches(r#"{"a": {"$exists": true}}"#, r#"{"a": null}"#));
        assert!(matches(r#"{"b": {"$exists": false}}"#, r#"{"a": 1}"#));
        assert!(matches(r#"{"a": {"$type": "string"}}"#, r#"{"a": "x"}"#));
        assert!(!matches(r#"{"a": {"$type": "int"}}"#, r#"{"a": "x"}"#));
    }

    #[test]
    fn parse_errors() {
        let bad = |s: &str| {
            let d = invalidb_json::parse_document(s).unwrap();
            parse_filter(&d).unwrap_err()
        };
        bad(r#"{"$or": []}"#);
        bad(r#"{"$or": "nope"}"#);
        bad(r#"{"$unknownTop": 1}"#);
        bad(r#"{"a": {"$bogus": 1}}"#);
        bad(r#"{"a": {"$in": 5}}"#);
        bad(r#"{"a": {"$mod": [0, 1]}}"#);
        bad(r#"{"a": {"$mod": [3]}}"#);
        bad(r#"{"a": {"$size": -1}}"#);
        bad(r#"{"a": {"$regex": "("}}"#);
        bad(r#"{"a": {"$options": "i"}}"#);
        bad(r#"{"a": {"$gt": 5, "plain": 1}}"#);
        bad(r#"{"a": {"$nearSphere": [0, 0]}}"#);
        bad(r#"{"a": {"$type": "decimal128"}}"#);
        bad(r#"{"$text": {}}"#);
        bad(r#"{"a": {"$geoWithin": {"$polygon": [[0,0],[1,1]]}}}"#);
    }

    #[test]
    fn object_literal_without_operators_is_exact_equality() {
        // {a: {b: 1}} is equality against the whole object, not a path match.
        assert!(matches(r#"{"a": {"b": 1}}"#, r#"{"a": {"b": 1}}"#));
        assert!(!matches(r#"{"a": {"b": 1}}"#, r#"{"a": {"b": 1, "c": 2}}"#));
    }

    #[test]
    fn paper_benchmark_query_shape() {
        // SELECT * FROM test WHERE random >= i AND random < j (§6.1).
        let q = r#"{"random": {"$gte": 100, "$lt": 200}}"#;
        assert!(matches(q, r#"{"random": 150}"#));
        assert!(!matches(q, r#"{"random": 200}"#));
        assert!(!matches(q, r#"{"random": 99}"#));
        let _ = doc! {}; // keep the doc! import exercised
    }
}
