//! Pluggable, MongoDB-compatible real-time query engine (paper §5.3/§5.4).
//!
//! This crate contains everything needed to decide *"does this after-image
//! match this query, and where does it sort?"*:
//!
//! * [`filter`] — the predicate AST and its evaluation semantics (implicit
//!   array traversal, type-bracketed comparisons, null-vs-missing);
//! * [`parse`] — the MongoDB filter-document dialect;
//! * [`regex`] — a from-scratch backtracking regex engine for `$regex`;
//! * [`text`] — `$text` full-text search;
//! * [`geo`] — `$geoWithin` / `$nearSphere`;
//! * [`sort`] — multi-attribute ordering with primary-key tiebreak;
//! * [`normalize`] — canonicalization for stable query hashing;
//! * [`predicate`] — conjunctive decomposition into hash-consed atoms
//!   (the currency of the multi-query optimizations);
//! * [`engine`] — the [`QueryEngine`]/[`PreparedQuery`] plug-in interface
//!   with the full [`MongoQueryEngine`] and a minimal [`KvQueryEngine`].

pub mod engine;
pub mod filter;
pub mod geo;
pub mod normalize;
pub mod parse;
pub mod path;
pub mod predicate;
pub mod regex;
pub mod sort;
pub mod text;

pub use engine::{
    EngineError, KvQueryEngine, MongoQueryEngine, PreparedAtom, PreparedQuery, QueryEngine,
};
pub use filter::{FieldPred, Filter};
pub use normalize::{normalize_filter, normalize_spec};
pub use parse::{parse_filter, FilterParseError};
pub use predicate::{decompose, filter_hash, predicate_hash, Atom, FilterHash, PredicateHash};
pub use sort::{compare_items, sort_value};
