//! Query normalization for stable query hashing (§5.1).
//!
//! Query partitioning hashes the *query attributes*; to make semantically
//! identical filters hash identically, the filter is canonicalized into its
//! **conjunctive form** first: top-level field conditions and (recursively
//! flattened) `$and` operands become a flat list of single-conjunct
//! documents, multi-operator conditions are split into one conjunct per
//! operator (exact under MongoDB semantics — see [`crate::predicate`]),
//! `{$eq: lit}` collapses to the plain-literal spelling, and the conjunct
//! list is sorted and deduplicated by canonical encoding. Zero conjuncts
//! render as `{}`, one as itself, many as a single sorted `$and`. The
//! operand lists of `$or`/`$nor` are sorted (and deduplicated) the same
//! way. Literal values (equality operands, `$in` lists, …) are left
//! untouched — their order carries meaning.
//!
//! Because the app server hashes the *normalized* spec, every subscription
//! whose filter is the same conjunction — however spelled — lands on the
//! same `QueryHash`, and therefore shares one query group on the matching
//! grid and one sort window on the sorting stage.

use invalidb_common::{Document, QuerySpec, Value};

/// Returns a canonicalized copy of the spec (used before hashing).
pub fn normalize_spec(spec: &QuerySpec) -> QuerySpec {
    let mut out = spec.clone();
    out.filter = normalize_filter(&spec.filter);
    out
}

/// Canonicalizes a filter document into its conjunctive form.
pub fn normalize_filter(filter: &Document) -> Document {
    let mut conjuncts = conjuncts_of(filter);
    match conjuncts.len() {
        0 => Document::new(),
        1 => conjuncts.pop().expect("one conjunct"),
        _ => {
            let items: Vec<Value> = conjuncts.into_iter().map(Value::Object).collect();
            let mut out = Document::with_capacity(1);
            out.insert("$and", Value::Array(items));
            out
        }
    }
}

/// The canonical conjunct list of a filter: each returned document is one
/// atomic conjunct (parseable standalone), and their AND is semantically
/// identical to the input. Sorted and deduplicated by canonical encoding.
///
/// Malformed fragments (an empty or non-array `$and`, unknown top-level
/// operators, mixed operator/plain keys) are preserved verbatim as opaque
/// conjuncts so the parser still rejects them — normalization must never
/// turn an invalid filter into a valid one.
pub(crate) fn conjuncts_of(filter: &Document) -> Vec<Document> {
    let mut out = Vec::new();
    collect_conjuncts(filter, &mut out);
    let mut keyed: Vec<(Vec<u8>, Document)> = out
        .into_iter()
        .map(|d| {
            let mut bytes = Vec::new();
            Value::Object(d.clone()).write_canonical(&mut bytes);
            (bytes, d)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.dedup_by(|a, b| a.0 == b.0);
    keyed.into_iter().map(|(_, d)| d).collect()
}

fn singleton(key: &str, value: Value) -> Document {
    let mut d = Document::with_capacity(1);
    d.insert(key, value);
    d
}

fn collect_conjuncts(filter: &Document, out: &mut Vec<Document>) {
    for (key, value) in filter.iter() {
        match key {
            "$and" => match value.as_array() {
                // Well-formed $and: flatten its operands into this level.
                Some(items)
                    if !items.is_empty() && items.iter().all(|i| i.as_object().is_some()) =>
                {
                    for item in items {
                        collect_conjuncts(item.as_object().expect("checked"), out);
                    }
                }
                // Malformed: keep verbatim so parse still rejects it.
                _ => out.push(singleton(key, value.clone())),
            },
            "$or" | "$nor" => out.push(singleton(key, normalize_operand_list(value))),
            "$text" => out.push(singleton(key, value.clone())),
            _ if key.starts_with('$') => out.push(singleton(key, value.clone())),
            field => collect_field_conjuncts(field, value, out),
        }
    }
}

/// `$options` modifies `$regex` and `$maxDistance` modifies `$nearSphere`
/// at parse time: a condition containing any of them is not splittable.
fn coupled(op: &str) -> bool {
    matches!(op, "$regex" | "$options" | "$nearSphere" | "$maxDistance")
}

fn collect_field_conjuncts(field: &str, value: &Value, out: &mut Vec<Document>) {
    let cond = normalize_condition(value);
    if let Value::Object(obj) = &cond {
        let all_ops = !obj.is_empty() && obj.keys().all(|k| k.starts_with('$'));
        if all_ops && obj.len() > 1 && !obj.keys().any(coupled) {
            // Exact split: each operator is an independent predicate over
            // the same resolved values (implicit array fan-out included).
            for (op, operand) in obj.iter() {
                out.push(singleton(field, eq_collapsed(op, operand)));
            }
            return;
        }
        if all_ops && obj.len() == 1 {
            let (op, operand) = obj.iter().next().expect("one op");
            out.push(singleton(field, eq_collapsed(op, operand)));
            return;
        }
    }
    out.push(singleton(field, cond));
}

/// Canonicalizes `{$eq: lit}` to the plain-literal spelling `lit` whenever
/// that spelling parses back to the same predicate (i.e. the literal is not
/// an object with operator-looking keys, which only the explicit `$eq` form
/// can express).
fn eq_collapsed(op: &str, operand: &Value) -> Value {
    if op == "$eq" {
        match operand {
            Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => {}
            literal => return literal.clone(),
        }
    }
    Value::Object(singleton(op, operand.clone()))
}

fn normalize_operand_list(v: &Value) -> Value {
    let items = match v.as_array() {
        Some(items) => items,
        None => return v.clone(),
    };
    let mut normalized: Vec<Value> = items
        .iter()
        .map(|item| match item {
            Value::Object(doc) => Value::Object(normalize_filter(doc)),
            other => other.clone(),
        })
        .collect();
    normalized.sort_by_key(|v| {
        let mut bytes = Vec::new();
        v.write_canonical(&mut bytes);
        bytes
    });
    normalized.dedup_by(|a, b| invalidb_common::canonical_eq(a, b));
    Value::Array(normalized)
}

/// Normalizes one field condition: operator objects get their operator keys
/// sorted (recursing into `$not`/`$elemMatch`); literals stay as-is.
fn normalize_condition(v: &Value) -> Value {
    let obj = match v {
        Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => obj,
        other => return other.clone(),
    };
    let mut entries: Vec<(String, Value)> = obj
        .iter()
        .map(|(op, operand)| {
            let operand = match op {
                "$not" => normalize_condition(operand),
                "$elemMatch" => match operand {
                    Value::Object(inner) if inner.keys().any(|k| k.starts_with('$')) => {
                        normalize_condition(operand)
                    }
                    Value::Object(inner) => Value::Object(normalize_filter(inner)),
                    other => other.clone(),
                },
                _ => operand.clone(),
            };
            (op.to_owned(), operand)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn field_order_is_canonicalized() {
        let a = QuerySpec::filter("t", doc! { "b" => 1i64, "a" => 2i64 });
        let b = QuerySpec::filter("t", doc! { "a" => 2i64, "b" => 1i64 });
        assert_ne!(a.stable_hash(), b.stable_hash(), "raw hashes differ");
        assert_eq!(normalize_spec(&a).stable_hash(), normalize_spec(&b).stable_hash());
    }

    #[test]
    fn operator_order_is_canonicalized() {
        let a = QuerySpec::filter("t", doc! { "n" => doc! { "$lt" => 9i64, "$gt" => 5i64 } });
        let b = QuerySpec::filter("t", doc! { "n" => doc! { "$gt" => 5i64, "$lt" => 9i64 } });
        assert_eq!(normalize_spec(&a).stable_hash(), normalize_spec(&b).stable_hash());
    }

    #[test]
    fn conjunctive_spellings_collapse() {
        // Implicit conjunction, explicit $and, nested $and, $eq vs plain
        // literal: one conjunction, one hash — and therefore one query
        // group and one shared sort window downstream.
        let spellings = [
            doc! { "a" => 1i64, "n" => doc! { "$gt" => 5i64, "$lt" => 9i64 } },
            doc! { "$and" => vec![
                Value::Object(doc! { "a" => doc! { "$eq" => 1i64 } }),
                Value::Object(doc! { "n" => doc! { "$lt" => 9i64 } }),
                Value::Object(doc! { "n" => doc! { "$gt" => 5i64 } }),
            ]},
            doc! { "n" => doc! { "$gt" => 5i64 }, "$and" => vec![
                Value::Object(doc! { "$and" => vec![
                    Value::Object(doc! { "n" => doc! { "$lt" => 9i64 } }),
                ]}),
                Value::Object(doc! { "a" => 1i64 }),
            ]},
        ];
        let hashes: Vec<_> = spellings
            .iter()
            .map(|f| normalize_spec(&QuerySpec::filter("t", f.clone())).stable_hash())
            .collect();
        assert_eq!(hashes[0], hashes[1]);
        assert_eq!(hashes[0], hashes[2]);
    }

    #[test]
    fn malformed_and_is_preserved_for_the_parser() {
        // `{$and: []}` is a parse error; normalization must not silently
        // turn it into the match-everything filter.
        let empty = normalize_filter(&doc! { "$and" => Vec::<Value>::new() });
        assert!(crate::parse::parse_filter(&empty).is_err());
        let non_array = normalize_filter(&doc! { "$and" => 1i64 });
        assert!(crate::parse::parse_filter(&non_array).is_err());
    }

    #[test]
    fn or_operands_are_sorted_and_deduped() {
        let a = QuerySpec::filter(
            "t",
            doc! { "$or" => vec![
                Value::Object(doc! { "a" => 1i64 }),
                Value::Object(doc! { "b" => 2i64 }),
                Value::Object(doc! { "a" => 1i64 }),
            ]},
        );
        let b = QuerySpec::filter(
            "t",
            doc! { "$or" => vec![
                Value::Object(doc! { "b" => 2i64 }),
                Value::Object(doc! { "a" => 1i64 }),
            ]},
        );
        assert_eq!(normalize_spec(&a).stable_hash(), normalize_spec(&b).stable_hash());
    }

    #[test]
    fn literal_values_are_untouched() {
        // $in list order is semantic identity here: do not reorder literals.
        let a = QuerySpec::filter("t", doc! { "n" => doc! { "$in" => vec![2i64, 1] } });
        let normalized = normalize_spec(&a);
        assert_eq!(
            normalized.filter.get("n").unwrap().as_object().unwrap().get("$in"),
            Some(&Value::from(vec![2i64, 1]))
        );
        // Object literal equality keeps field order.
        let b = QuerySpec::filter("t", doc! { "o" => doc! { "y" => 1i64, "x" => 2i64 } });
        let normalized = normalize_spec(&b);
        let keys: Vec<&str> = normalized.filter.get("o").unwrap().as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["y", "x"]);
    }

    #[test]
    fn normalization_preserves_semantics() {
        let spec = QuerySpec::filter(
            "t",
            doc! {
                "b" => doc! { "$lt" => 9i64, "$gt" => 5i64 },
                "$or" => vec![
                    Value::Object(doc! { "x" => 1i64 }),
                    Value::Object(doc! { "y" => 2i64 }),
                ],
            },
        );
        let norm = normalize_spec(&spec);
        let orig = crate::parse::parse_filter(&spec.filter).unwrap();
        let canon = crate::parse::parse_filter(&norm.filter).unwrap();
        for d in [
            doc! { "b" => 7i64, "x" => 1i64 },
            doc! { "b" => 7i64, "y" => 2i64 },
            doc! { "b" => 7i64 },
            doc! { "b" => 10i64, "x" => 1i64 },
        ] {
            assert_eq!(orig.matches(&d), canon.matches(&d), "doc {d}");
        }
    }

    #[test]
    fn split_conditions_preserve_array_fanout_semantics() {
        // `{a: {$gt: 5, $lt: 9}}` matches `{a: [4, 10]}` under MongoDB
        // array fan-out (each predicate independently satisfiable); the
        // normalized split form must agree.
        let raw = doc! { "a" => doc! { "$gt" => 5i64, "$lt" => 9i64 } };
        let norm = normalize_filter(&raw);
        let orig = crate::parse::parse_filter(&raw).unwrap();
        let canon = crate::parse::parse_filter(&norm).unwrap();
        for d in [
            doc! { "a" => Value::from(vec![4i64, 10]) },
            doc! { "a" => 7i64 },
            doc! { "a" => 4i64 },
            doc! { "a" => Value::from(vec![1i64, 2]) },
        ] {
            assert_eq!(orig.matches(&d), canon.matches(&d), "doc {d}");
            assert!(orig.matches(&doc! { "a" => Value::from(vec![4i64, 10]) }));
        }
    }
}
