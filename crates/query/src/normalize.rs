//! Query normalization for stable query hashing (§5.1).
//!
//! Query partitioning hashes the *query attributes*; to make semantically
//! identical filters hash identically, the filter structure is canonicalized
//! first: field conditions are ordered lexicographically, operator keys
//! within a predicate object are ordered, and the operand lists of `$and`,
//! `$or` and `$nor` are sorted (and deduplicated) by canonical encoding.
//! Literal values (equality operands, `$in` lists, …) are left untouched —
//! their order carries meaning.

use invalidb_common::{Document, QuerySpec, Value};

/// Returns a canonicalized copy of the spec (used before hashing).
pub fn normalize_spec(spec: &QuerySpec) -> QuerySpec {
    let mut out = spec.clone();
    out.filter = normalize_filter(&spec.filter);
    out
}

/// Canonicalizes a filter document.
pub fn normalize_filter(filter: &Document) -> Document {
    let mut entries: Vec<(String, Value)> = filter
        .iter()
        .map(|(k, v)| {
            let v = match k {
                "$and" | "$or" | "$nor" => normalize_operand_list(v),
                "$text" => v.clone(),
                _ if k.starts_with('$') => v.clone(),
                _ => normalize_condition(v),
            };
            (k.to_owned(), v)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries.into_iter().collect()
}

fn normalize_operand_list(v: &Value) -> Value {
    let items = match v.as_array() {
        Some(items) => items,
        None => return v.clone(),
    };
    let mut normalized: Vec<Value> = items
        .iter()
        .map(|item| match item {
            Value::Object(doc) => Value::Object(normalize_filter(doc)),
            other => other.clone(),
        })
        .collect();
    normalized.sort_by_key(|v| {
        let mut bytes = Vec::new();
        v.write_canonical(&mut bytes);
        bytes
    });
    normalized.dedup_by(|a, b| invalidb_common::canonical_eq(a, b));
    Value::Array(normalized)
}

/// Normalizes one field condition: operator objects get their operator keys
/// sorted (recursing into `$not`/`$elemMatch`); literals stay as-is.
fn normalize_condition(v: &Value) -> Value {
    let obj = match v {
        Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => obj,
        other => return other.clone(),
    };
    let mut entries: Vec<(String, Value)> = obj
        .iter()
        .map(|(op, operand)| {
            let operand = match op {
                "$not" => normalize_condition(operand),
                "$elemMatch" => match operand {
                    Value::Object(inner) if inner.keys().any(|k| k.starts_with('$')) => {
                        normalize_condition(operand)
                    }
                    Value::Object(inner) => Value::Object(normalize_filter(inner)),
                    other => other.clone(),
                },
                _ => operand.clone(),
            };
            (op.to_owned(), operand)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Object(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn field_order_is_canonicalized() {
        let a = QuerySpec::filter("t", doc! { "b" => 1i64, "a" => 2i64 });
        let b = QuerySpec::filter("t", doc! { "a" => 2i64, "b" => 1i64 });
        assert_ne!(a.stable_hash(), b.stable_hash(), "raw hashes differ");
        assert_eq!(normalize_spec(&a).stable_hash(), normalize_spec(&b).stable_hash());
    }

    #[test]
    fn operator_order_is_canonicalized() {
        let a = QuerySpec::filter("t", doc! { "n" => doc! { "$lt" => 9i64, "$gt" => 5i64 } });
        let b = QuerySpec::filter("t", doc! { "n" => doc! { "$gt" => 5i64, "$lt" => 9i64 } });
        assert_eq!(normalize_spec(&a).stable_hash(), normalize_spec(&b).stable_hash());
    }

    #[test]
    fn or_operands_are_sorted_and_deduped() {
        let a = QuerySpec::filter(
            "t",
            doc! { "$or" => vec![
                Value::Object(doc! { "a" => 1i64 }),
                Value::Object(doc! { "b" => 2i64 }),
                Value::Object(doc! { "a" => 1i64 }),
            ]},
        );
        let b = QuerySpec::filter(
            "t",
            doc! { "$or" => vec![
                Value::Object(doc! { "b" => 2i64 }),
                Value::Object(doc! { "a" => 1i64 }),
            ]},
        );
        assert_eq!(normalize_spec(&a).stable_hash(), normalize_spec(&b).stable_hash());
    }

    #[test]
    fn literal_values_are_untouched() {
        // $in list order is semantic identity here: do not reorder literals.
        let a = QuerySpec::filter("t", doc! { "n" => doc! { "$in" => vec![2i64, 1] } });
        let normalized = normalize_spec(&a);
        assert_eq!(
            normalized.filter.get("n").unwrap().as_object().unwrap().get("$in"),
            Some(&Value::from(vec![2i64, 1]))
        );
        // Object literal equality keeps field order.
        let b = QuerySpec::filter("t", doc! { "o" => doc! { "y" => 1i64, "x" => 2i64 } });
        let normalized = normalize_spec(&b);
        let keys: Vec<&str> = normalized.filter.get("o").unwrap().as_object().unwrap().keys().collect();
        assert_eq!(keys, vec!["y", "x"]);
    }

    #[test]
    fn normalization_preserves_semantics() {
        let spec = QuerySpec::filter(
            "t",
            doc! {
                "b" => doc! { "$lt" => 9i64, "$gt" => 5i64 },
                "$or" => vec![
                    Value::Object(doc! { "x" => 1i64 }),
                    Value::Object(doc! { "y" => 2i64 }),
                ],
            },
        );
        let norm = normalize_spec(&spec);
        let orig = crate::parse::parse_filter(&spec.filter).unwrap();
        let canon = crate::parse::parse_filter(&norm.filter).unwrap();
        for d in [
            doc! { "b" => 7i64, "x" => 1i64 },
            doc! { "b" => 7i64, "y" => 2i64 },
            doc! { "b" => 7i64 },
            doc! { "b" => 10i64, "x" => 1i64 },
        ] {
            assert_eq!(orig.matches(&d), canon.matches(&d), "doc {d}");
        }
    }
}
