//! A miniature distributed stream processor.
//!
//! The paper's prototype runs its matching workload on Apache Storm (§5.4):
//! a *topology* of sources (spouts) and processing bolts connected by
//! streams with configurable *groupings*. This crate reimplements the
//! subset InvaliDB needs, in-process with one executor thread per task:
//!
//! * [`Source`]s pull messages from the outside world (e.g. event-layer
//!   subscriptions) and inject them into the topology;
//! * [`Bolt`]s process one message at a time and may emit downstream; they
//!   also receive periodic *ticks* for time-driven work (retention expiry,
//!   TTL enforcement, heartbeats);
//! * [`Grouping`]s route each message to downstream tasks: shuffle
//!   (round-robin), fields (hash partitioning), broadcast, or *direct* — an
//!   arbitrary task-list function, which is what implements InvaliDB's
//!   two-dimensional grid routing (a write goes to all nodes of one write
//!   partition; a query to all nodes of one query partition, §5.1);
//! * bounded task queues give natural backpressure: when a matching node
//!   cannot keep up, latency rises and eventually saturates — the knee the
//!   paper's SLA experiments measure.
//!
//! Delivery inside the topology is lossless and FIFO per channel (stronger
//! than Storm's at-least-once, which the paper required precisely to avoid
//! losing writes).

pub mod metrics;
pub mod topology;

pub use metrics::{ComponentMetrics, LinkMetrics, LinkRegistry, TopologyMetrics};
pub use topology::{
    run_with_collector, Bolt, BoltContext, Grouping, Message, RunningTopology, Source, TopologyBuilder,
    TopologyConfig,
};
