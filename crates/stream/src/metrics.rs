//! Topology observability: per-component counters and queue depths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one component (all tasks combined).
#[derive(Debug, Default)]
pub struct ComponentMetrics {
    /// Messages executed by the component's bolts (or emitted by sources).
    pub processed: AtomicU64,
    /// Messages emitted downstream.
    pub emitted: AtomicU64,
    /// Ticks delivered.
    pub ticks: AtomicU64,
}

impl ComponentMetrics {
    /// Snapshot of `(processed, emitted, ticks)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.processed.load(Ordering::Relaxed),
            self.emitted.load(Ordering::Relaxed),
            self.ticks.load(Ordering::Relaxed),
        )
    }
}

/// Metrics for a whole topology, keyed by component name.
#[derive(Debug, Default)]
pub struct TopologyMetrics {
    components: parking_lot::RwLock<HashMap<String, Arc<ComponentMetrics>>>,
}

impl TopologyMetrics {
    /// Gets (or creates) the metrics handle for a component.
    pub fn component(&self, name: &str) -> Arc<ComponentMetrics> {
        if let Some(m) = self.components.read().get(name) {
            return Arc::clone(m);
        }
        let mut map = self.components.write();
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Names of all observed components.
    pub fn component_names(&self) -> Vec<String> {
        self.components.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = TopologyMetrics::default();
        let c = m.component("matcher");
        c.processed.fetch_add(3, Ordering::Relaxed);
        c.emitted.fetch_add(1, Ordering::Relaxed);
        // Same handle returned for the same name.
        let again = m.component("matcher");
        assert_eq!(again.snapshot(), (3, 1, 0));
        assert_eq!(m.component_names().len(), 1);
    }
}
