//! Topology observability: per-component counters and queue depths.
//!
//! The metric types themselves now live in `invalidb-obs` so the whole
//! workspace (including layers below the stream processor, like the net
//! transport) shares one observability vocabulary; this module re-exports
//! them under their historical paths.

pub use invalidb_obs::{ComponentMetrics, LinkMetrics, LinkRegistry, TopologyMetrics};
