//! Topology construction and execution.

use crate::metrics::TopologyMetrics;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use invalidb_common::partition::partition_of;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Marker bound for messages flowing through a topology.
pub trait Message: Send + Clone + 'static {}
impl<T: Send + Clone + 'static> Message for T {}

/// A message source (Storm spout). Runs on its own executor thread; the
/// runtime calls [`Source::poll`] in a loop until shutdown.
pub trait Source<M: Message>: Send {
    /// Returns the next batch of messages, waiting up to `timeout` for one.
    /// An empty vector means "nothing right now".
    fn poll(&mut self, timeout: Duration) -> Vec<M>;
}

/// Blanket impl so closures can be sources.
impl<M: Message, F> Source<M> for F
where
    F: FnMut(Duration) -> Vec<M> + Send,
{
    fn poll(&mut self, timeout: Duration) -> Vec<M> {
        self(timeout)
    }
}

/// Context handed to a bolt for emitting downstream.
pub struct BoltContext<'a, M: Message> {
    outputs: &'a [OutputConnection<M>],
    rr_counters: &'a [AtomicUsize],
    emitted: u64,
}

impl<M: Message> BoltContext<'_, M> {
    /// Emits a message to all downstream connections (routed per grouping).
    pub fn emit(&mut self, msg: M) {
        self.emitted += 1;
        for (conn, rr) in self.outputs.iter().zip(self.rr_counters.iter()) {
            conn.route(&msg, rr);
        }
    }
}

/// A processing node (Storm bolt). One instance per task.
pub trait Bolt<M: Message>: Send {
    /// Processes one input message.
    fn execute(&mut self, input: M, ctx: &mut BoltContext<'_, M>);

    /// Processes one scheduling turn's worth of buffered input (up to
    /// `max_batch` messages, in arrival order). The runtime always delivers
    /// through this hook; the default forwards message-by-message to
    /// [`Bolt::execute`], so plain bolts behave exactly as before. Bolts
    /// with cross-message amortization opportunities (the matching stage's
    /// shared index probe) override it. Implementations must leave
    /// `inputs` empty — the runtime reuses the buffer across turns.
    fn execute_batch(&mut self, inputs: &mut Vec<M>, ctx: &mut BoltContext<'_, M>) {
        for msg in inputs.drain(..) {
            self.execute(msg, ctx);
        }
    }

    /// Periodic tick for time-driven work (default: no-op).
    fn tick(&mut self, _ctx: &mut BoltContext<'_, M>) {}
}

/// Routing function of a [`Grouping::Direct`]: message + downstream task
/// count → target task indices.
pub type DirectRouter<M> = Box<dyn Fn(&M, usize) -> Vec<usize> + Send + Sync>;

/// How messages are routed to the tasks of a downstream component.
pub enum Grouping<M> {
    /// Round-robin across tasks.
    Shuffle,
    /// Hash partitioning: same hash → same task.
    Fields(Box<dyn Fn(&M) -> u64 + Send + Sync>),
    /// Every task receives every message.
    Broadcast,
    /// Arbitrary task list per message — implements InvaliDB's grid routing.
    Direct(DirectRouter<M>),
}

impl<M> Grouping<M> {
    /// Fields grouping from a hash function.
    pub fn fields(f: impl Fn(&M) -> u64 + Send + Sync + 'static) -> Self {
        Grouping::Fields(Box::new(f))
    }

    /// Direct grouping from a task-list function (receives the message and
    /// the downstream task count).
    pub fn direct(f: impl Fn(&M, usize) -> Vec<usize> + Send + Sync + 'static) -> Self {
        Grouping::Direct(Box::new(f))
    }
}

enum Input<M> {
    Msg(M),
    Stop,
}

struct OutputConnection<M: Message> {
    grouping: Arc<Grouping<M>>,
    task_senders: Vec<Sender<Input<M>>>,
    emitted: Arc<crate::metrics::ComponentMetrics>,
}

impl<M: Message> OutputConnection<M> {
    fn route(&self, msg: &M, rr: &AtomicUsize) {
        let n = self.task_senders.len();
        if n == 0 {
            return;
        }
        match &*self.grouping {
            Grouping::Shuffle => {
                let i = rr.fetch_add(1, Ordering::Relaxed) % n;
                self.send_to(i, msg.clone());
            }
            Grouping::Fields(hash) => {
                let i = partition_of(hash(msg), n);
                self.send_to(i, msg.clone());
            }
            Grouping::Broadcast => {
                for i in 0..n {
                    self.send_to(i, msg.clone());
                }
            }
            Grouping::Direct(f) => {
                for i in f(msg, n) {
                    if i < n {
                        self.send_to(i, msg.clone());
                    }
                }
            }
        }
    }

    fn send_to(&self, task: usize, msg: M) {
        // Blocking send: bounded queues provide backpressure. A send only
        // fails when the receiving task is gone (shutdown path) — the
        // message is dropped then, matching "cluster taken down" semantics.
        if self.task_senders[task].send(Input::Msg(msg)).is_ok() {
            self.emitted.emitted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Per-task input queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Interval between ticks delivered to every bolt task.
    pub tick_interval: Duration,
    /// How long sources block in one `poll` call.
    pub source_poll_timeout: Duration,
    /// How many already-buffered messages a bolt task drains per scheduling
    /// turn (batch execution): after one blocking receive, up to
    /// `max_batch - 1` more messages are taken without re-checking the
    /// clock. Amortizes channel wakeups under load; `1` reproduces the
    /// strict one-message-per-turn behavior. Ticks are never starved for
    /// longer than one batch.
    pub max_batch: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 8192,
            tick_interval: Duration::from_millis(100),
            source_poll_timeout: Duration::from_millis(20),
            max_batch: 32,
        }
    }
}

enum ComponentKind<M: Message> {
    Source(Option<Box<dyn Source<M>>>),
    Bolt { parallelism: usize, factory: Box<dyn Fn(usize) -> Box<dyn Bolt<M>> + Send> },
}

struct ComponentDef<M: Message> {
    name: String,
    kind: ComponentKind<M>,
    /// `(downstream component, grouping)` in declaration order.
    downstream: Vec<(String, Arc<Grouping<M>>)>,
}

/// Declarative topology builder. Components must be added in topological
/// order (upstream before downstream) — InvaliDB's pipelines are acyclic.
pub struct TopologyBuilder<M: Message> {
    components: Vec<ComponentDef<M>>,
    config: TopologyConfig,
}

impl<M: Message> Default for TopologyBuilder<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Message> TopologyBuilder<M> {
    /// New builder with default config.
    pub fn new() -> Self {
        Self { components: Vec::new(), config: TopologyConfig::default() }
    }

    /// Overrides the runtime configuration.
    pub fn with_config(mut self, config: TopologyConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds a source component.
    pub fn add_source(&mut self, name: &str, source: impl Source<M> + 'static) -> &mut Self {
        assert!(!self.components.iter().any(|c| c.name == name), "duplicate component `{name}`");
        self.components.push(ComponentDef {
            name: name.to_owned(),
            kind: ComponentKind::Source(Some(Box::new(source))),
            downstream: Vec::new(),
        });
        self
    }

    /// Adds a bolt component with `parallelism` tasks; `factory` builds one
    /// bolt instance per task index.
    pub fn add_bolt(
        &mut self,
        name: &str,
        parallelism: usize,
        factory: impl Fn(usize) -> Box<dyn Bolt<M>> + Send + 'static,
    ) -> &mut Self {
        assert!(parallelism > 0, "bolt `{name}` needs at least one task");
        assert!(!self.components.iter().any(|c| c.name == name), "duplicate component `{name}`");
        self.components.push(ComponentDef {
            name: name.to_owned(),
            kind: ComponentKind::Bolt { parallelism, factory: Box::new(factory) },
            downstream: Vec::new(),
        });
        self
    }

    /// Connects `from` → `to` with a grouping. `to` must be a bolt declared
    /// *after* `from` (topological order).
    pub fn connect(&mut self, from: &str, to: &str, grouping: Grouping<M>) -> &mut Self {
        let from_idx = self.position(from).unwrap_or_else(|| panic!("unknown component `{from}`"));
        let to_idx = self.position(to).unwrap_or_else(|| panic!("unknown component `{to}`"));
        assert!(
            to_idx > from_idx,
            "`{to}` must be declared after `{from}` (acyclic, topological order)"
        );
        assert!(
            matches!(self.components[to_idx].kind, ComponentKind::Bolt { .. }),
            "`{to}` must be a bolt"
        );
        self.components[from_idx].downstream.push((to.to_owned(), Arc::new(grouping)));
        self
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.components.iter().position(|c| c.name == name)
    }

    /// Builds and starts the topology.
    pub fn start(mut self) -> RunningTopology {
        let metrics = Arc::new(TopologyMetrics::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        // 1. Create input channels for every bolt task.
        let mut task_senders: HashMap<String, Vec<Sender<Input<M>>>> = HashMap::new();
        let mut task_receivers: HashMap<String, Vec<Receiver<Input<M>>>> = HashMap::new();
        for c in &self.components {
            if let ComponentKind::Bolt { parallelism, .. } = &c.kind {
                let mut txs = Vec::with_capacity(*parallelism);
                let mut rxs = Vec::with_capacity(*parallelism);
                for _ in 0..*parallelism {
                    let (tx, rx) = bounded(self.config.queue_capacity);
                    txs.push(tx);
                    rxs.push(rx);
                }
                task_senders.insert(c.name.clone(), txs);
                task_receivers.insert(c.name.clone(), rxs);
            }
        }
        // 2. Resolve output connections per component.
        let connections: HashMap<String, Arc<Vec<OutputConnection<M>>>> = self
            .components
            .iter()
            .map(|c| {
                let conns: Vec<OutputConnection<M>> = c
                    .downstream
                    .iter()
                    .map(|(to, grouping)| OutputConnection {
                        grouping: Arc::clone(grouping),
                        task_senders: task_senders[to].clone(),
                        emitted: metrics.component(&c.name),
                    })
                    .collect();
                (c.name.clone(), Arc::new(conns))
            })
            .collect();
        // 3. Spawn executor threads.
        let mut source_threads = Vec::new();
        let mut bolt_threads: Vec<(String, Vec<JoinHandle<()>>)> = Vec::new();
        for c in self.components.iter_mut() {
            match &mut c.kind {
                ComponentKind::Source(source) => {
                    let mut source = source.take().expect("source consumed once");
                    let outputs = Arc::clone(&connections[&c.name]);
                    let shutdown = Arc::clone(&shutdown);
                    let m = metrics.component(&c.name);
                    let poll_timeout = self.config.source_poll_timeout;
                    let name = c.name.clone();
                    let handle = std::thread::Builder::new()
                        .name(format!("src-{name}"))
                        .spawn(move || {
                            let rr: Vec<AtomicUsize> =
                                outputs.iter().map(|_| AtomicUsize::new(0)).collect();
                            while !shutdown.load(Ordering::Relaxed) {
                                for msg in source.poll(poll_timeout) {
                                    m.processed.fetch_add(1, Ordering::Relaxed);
                                    for (conn, counter) in outputs.iter().zip(rr.iter()) {
                                        conn.route(&msg, counter);
                                    }
                                }
                            }
                        })
                        .expect("spawn source thread");
                    source_threads.push(handle);
                }
                ComponentKind::Bolt { parallelism, factory } => {
                    let rxs = task_receivers.remove(&c.name).expect("receivers exist");
                    let mut handles = Vec::with_capacity(*parallelism);
                    for (task, rx) in rxs.into_iter().enumerate() {
                        let mut bolt = factory(task);
                        let outputs = Arc::clone(&connections[&c.name]);
                        let m = metrics.component(&c.name);
                        let name = c.name.clone();
                        let tick_interval = self.config.tick_interval;
                        let max_batch = self.config.max_batch.max(1);
                        let handle = std::thread::Builder::new()
                            .name(format!("bolt-{name}-{task}"))
                            .spawn(move || {
                                let rr: Vec<AtomicUsize> =
                                    outputs.iter().map(|_| AtomicUsize::new(0)).collect();
                                let mut batch: Vec<M> = Vec::with_capacity(max_batch);
                                // Ticks are due every `tick_interval` whether
                                // or not the queue ever drains: a firehose
                                // arriving faster than the interval would
                                // otherwise reset `recv_timeout` forever and
                                // starve time-driven work (retention expiry,
                                // gauge publication) exactly when it matters.
                                let mut last_tick = Instant::now();
                                loop {
                                    let wait = tick_interval.saturating_sub(last_tick.elapsed());
                                    match rx.recv_timeout(wait) {
                                        Ok(Input::Msg(msg)) => {
                                            m.processed.fetch_add(1, Ordering::Relaxed);
                                            // Saturation gauge: live input
                                            // backlog (incl. the message in
                                            // hand), refreshed per batch
                                            // so a drained spike decays
                                            // even under steady traffic.
                                            m.queue_depth.store(rx.len() as u64 + 1, Ordering::Relaxed);
                                            // Batch execution: drain what is
                                            // already buffered (bounded)
                                            // without paying a blocking
                                            // receive per message, then hand
                                            // the whole turn to the bolt in
                                            // one call so it can amortize
                                            // cross-message work.
                                            batch.push(msg);
                                            let mut stop = false;
                                            while batch.len() < max_batch {
                                                match rx.try_recv() {
                                                    Ok(Input::Msg(msg)) => {
                                                        m.processed.fetch_add(1, Ordering::Relaxed);
                                                        batch.push(msg);
                                                    }
                                                    Ok(Input::Stop) => {
                                                        stop = true;
                                                        break;
                                                    }
                                                    Err(_) => break, // drained
                                                }
                                            }
                                            let mut ctx = BoltContext {
                                                outputs: &outputs,
                                                rr_counters: &rr,
                                                emitted: 0,
                                            };
                                            bolt.execute_batch(&mut batch, &mut ctx);
                                            batch.clear();
                                            if stop {
                                                break;
                                            }
                                            if last_tick.elapsed() >= tick_interval {
                                                m.ticks.fetch_add(1, Ordering::Relaxed);
                                                let mut ctx = BoltContext {
                                                    outputs: &outputs,
                                                    rr_counters: &rr,
                                                    emitted: 0,
                                                };
                                                bolt.tick(&mut ctx);
                                                last_tick = Instant::now();
                                            }
                                        }
                                        Err(RecvTimeoutError::Timeout) => {
                                            m.ticks.fetch_add(1, Ordering::Relaxed);
                                            // Idle: the backlog drained, so
                                            // the gauge decays to the live
                                            // queue length.
                                            m.queue_depth.store(rx.len() as u64, Ordering::Relaxed);
                                            let mut ctx = BoltContext {
                                                outputs: &outputs,
                                                rr_counters: &rr,
                                                emitted: 0,
                                            };
                                            bolt.tick(&mut ctx);
                                            last_tick = Instant::now();
                                        }
                                        Ok(Input::Stop) | Err(RecvTimeoutError::Disconnected) => break,
                                    }
                                }
                            })
                            .expect("spawn bolt thread");
                        handles.push(handle);
                    }
                    bolt_threads.push((c.name.clone(), handles));
                }
            }
        }
        // Keep one sender per bolt task for the shutdown path.
        let stop_senders: Vec<(String, Vec<Sender<Input<M>>>)> =
            bolt_threads.iter().map(|(name, _)| (name.clone(), task_senders[name].clone())).collect();
        RunningTopology {
            metrics,
            shutdown,
            source_threads,
            stopper: Some(Box::new(move || {
                // Components were added in topological order: stopping layer
                // by layer after upstreams drained guarantees every task sees
                // all of its input before Stop.
                for ((_, handles), (_, senders)) in bolt_threads.into_iter().zip(stop_senders) {
                    for tx in &senders {
                        let _ = tx.send(Input::Stop);
                    }
                    for h in handles {
                        let _ = h.join();
                    }
                }
            })),
        }
    }
}

/// Runs a closure with a [`BoltContext`] whose emissions are collected into
/// `out` — lets bolt implementations be unit-tested in isolation, without
/// assembling a topology.
pub fn run_with_collector<M: Message>(out: &mut Vec<M>, f: impl FnOnce(&mut BoltContext<'_, M>)) {
    let (tx, rx) = bounded(1 << 20);
    let conns = vec![OutputConnection {
        grouping: Arc::new(Grouping::<M>::Shuffle),
        task_senders: vec![tx],
        emitted: Arc::new(crate::metrics::ComponentMetrics::default()),
    }];
    let rr = vec![AtomicUsize::new(0)];
    let mut ctx = BoltContext { outputs: &conns, rr_counters: &rr, emitted: 0 };
    f(&mut ctx);
    drop(conns);
    while let Ok(Input::Msg(m)) = rx.try_recv() {
        out.push(m);
    }
}

/// Handle to a started topology.
pub struct RunningTopology {
    metrics: Arc<TopologyMetrics>,
    shutdown: Arc<AtomicBool>,
    source_threads: Vec<JoinHandle<()>>,
    stopper: Option<Box<dyn FnOnce() + Send>>,
}

impl RunningTopology {
    /// Topology metrics.
    pub fn metrics(&self) -> &Arc<TopologyMetrics> {
        &self.metrics
    }

    /// Stops sources, drains bolts layer by layer, joins all threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for h in self.source_threads.drain(..) {
            let _ = h.join();
        }
        if let Some(stop) = self.stopper.take() {
            stop();
        }
    }
}

impl Drop for RunningTopology {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}
