//! Integration tests for the mini stream processor.

use crossbeam::channel::{unbounded, Receiver, Sender};
use invalidb_stream::{Bolt, BoltContext, Grouping, TopologyBuilder, TopologyConfig};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Source pulling from a crossbeam channel (mirrors a broker subscription).
struct ChannelSource(Receiver<u64>);

impl invalidb_stream::Source<u64> for ChannelSource {
    fn poll(&mut self, timeout: Duration) -> Vec<u64> {
        match self.0.recv_timeout(timeout) {
            Ok(v) => {
                let mut out = vec![v];
                out.extend(self.0.try_iter());
                out
            }
            Err(_) => Vec::new(),
        }
    }
}

/// Bolt that records which task saw which messages, optionally re-emitting.
struct Recorder {
    task: usize,
    seen: Arc<Mutex<Vec<(usize, u64)>>>,
    reemit: bool,
}

impl Bolt<u64> for Recorder {
    fn execute(&mut self, input: u64, ctx: &mut BoltContext<'_, u64>) {
        self.seen.lock().push((self.task, input));
        if self.reemit {
            ctx.emit(input * 10);
        }
    }
}

type Seen = Arc<Mutex<Vec<(usize, u64)>>>;

fn build_pipeline(
    grouping: Grouping<u64>,
    parallelism: usize,
) -> (Sender<u64>, Seen, invalidb_stream::RunningTopology) {
    let (tx, rx) = unbounded();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = TopologyBuilder::new().with_config(TopologyConfig {
        tick_interval: Duration::from_millis(10),
        ..TopologyConfig::default()
    });
    b.add_source("src", ChannelSource(rx));
    let seen2 = Arc::clone(&seen);
    b.add_bolt("sink", parallelism, move |task| {
        Box::new(Recorder { task, seen: Arc::clone(&seen2), reemit: false })
    });
    b.connect("src", "sink", grouping);
    let topo = b.start();
    (tx, seen, topo)
}

fn drain(seen: &Arc<Mutex<Vec<(usize, u64)>>>, expect: usize) -> Vec<(usize, u64)> {
    for _ in 0..500 {
        if seen.lock().len() >= expect {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    seen.lock().clone()
}

#[test]
fn shuffle_distributes_all_messages() {
    let (tx, seen, topo) = build_pipeline(Grouping::Shuffle, 4);
    for i in 0..100 {
        tx.send(i).unwrap();
    }
    let got = drain(&seen, 100);
    assert_eq!(got.len(), 100);
    let tasks: HashSet<usize> = got.iter().map(|(t, _)| *t).collect();
    assert_eq!(tasks.len(), 4, "round-robin uses every task");
    topo.shutdown();
}

#[test]
fn fields_grouping_is_sticky() {
    let (tx, seen, topo) = build_pipeline(Grouping::fields(|m: &u64| m % 3), 4);
    for i in 0..60 {
        tx.send(i).unwrap();
    }
    let got = drain(&seen, 60);
    assert_eq!(got.len(), 60);
    // Messages with the same hash must land on the same task.
    for class in 0..3u64 {
        let tasks: HashSet<usize> =
            got.iter().filter(|(_, m)| m % 3 == class).map(|(t, _)| *t).collect();
        assert_eq!(tasks.len(), 1, "class {class} split across tasks");
    }
    topo.shutdown();
}

#[test]
fn broadcast_reaches_every_task() {
    let (tx, seen, topo) = build_pipeline(Grouping::Broadcast, 3);
    tx.send(7).unwrap();
    let got = drain(&seen, 3);
    assert_eq!(got.len(), 3);
    let tasks: HashSet<usize> = got.iter().map(|(t, _)| *t).collect();
    assert_eq!(tasks, HashSet::from([0, 1, 2]));
    topo.shutdown();
}

#[test]
fn direct_grouping_routes_grid_style() {
    // Route message m to tasks {m % 2, 2 + m % 2}: a 2x2 "column" broadcast.
    let (tx, seen, topo) = build_pipeline(
        Grouping::direct(|m: &u64, _n| vec![(*m % 2) as usize, 2 + (*m % 2) as usize]),
        4,
    );
    tx.send(0).unwrap();
    tx.send(1).unwrap();
    let got = drain(&seen, 4);
    let m0: HashSet<usize> = got.iter().filter(|(_, m)| *m == 0).map(|(t, _)| *t).collect();
    let m1: HashSet<usize> = got.iter().filter(|(_, m)| *m == 1).map(|(t, _)| *t).collect();
    assert_eq!(m0, HashSet::from([0, 2]));
    assert_eq!(m1, HashSet::from([1, 3]));
    topo.shutdown();
}

#[test]
fn multi_stage_pipeline_transforms() {
    let (tx, rx) = unbounded();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut b = TopologyBuilder::new();
    b.add_source("src", ChannelSource(rx));
    b.add_bolt("stage1", 2, |task| {
        Box::new(Recorder { task, seen: Arc::new(Mutex::new(Vec::new())), reemit: true })
    });
    let seen2 = Arc::clone(&seen);
    b.add_bolt("stage2", 1, move |task| {
        Box::new(Recorder { task, seen: Arc::clone(&seen2), reemit: false })
    });
    b.connect("src", "stage1", Grouping::Shuffle);
    b.connect("stage1", "stage2", Grouping::Shuffle);
    let topo = b.start();
    for i in 1..=10 {
        tx.send(i).unwrap();
    }
    let got = drain(&seen, 10);
    assert_eq!(got.len(), 10);
    assert!(got.iter().all(|(_, m)| m % 10 == 0), "stage1 multiplied by 10");
    let metrics = topo.metrics().component("stage1").snapshot();
    assert_eq!(metrics.0, 10, "stage1 processed all inputs");
    assert_eq!(metrics.1, 10, "stage1 emitted all outputs");
    topo.shutdown();
}

#[test]
fn shutdown_drains_in_flight_messages() {
    let (tx, seen, topo) = build_pipeline(Grouping::Shuffle, 2);
    for i in 0..1000 {
        tx.send(i).unwrap();
    }
    // Give sources a moment to ingest, then shut down immediately: every
    // ingested message must still be processed (drain-before-stop).
    std::thread::sleep(Duration::from_millis(50));
    topo.shutdown();
    let got = seen.lock().clone();
    assert_eq!(got.len(), 1000, "no message lost on shutdown");
}

#[test]
fn ticks_reach_bolts() {
    struct TickCounter(Arc<Mutex<u32>>);
    impl Bolt<u64> for TickCounter {
        fn execute(&mut self, _input: u64, _ctx: &mut BoltContext<'_, u64>) {}
        fn tick(&mut self, _ctx: &mut BoltContext<'_, u64>) {
            *self.0.lock() += 1;
        }
    }
    let (_tx, rx) = unbounded::<u64>();
    let ticks = Arc::new(Mutex::new(0));
    let mut b = TopologyBuilder::new().with_config(TopologyConfig {
        tick_interval: Duration::from_millis(5),
        ..TopologyConfig::default()
    });
    b.add_source("src", ChannelSource(rx));
    let t2 = Arc::clone(&ticks);
    b.add_bolt("ticky", 1, move |_| Box::new(TickCounter(Arc::clone(&t2))));
    b.connect("src", "ticky", Grouping::Shuffle);
    let topo = b.start();
    std::thread::sleep(Duration::from_millis(100));
    topo.shutdown();
    assert!(*ticks.lock() >= 5, "bolt received periodic ticks");
}

#[test]
fn ticks_survive_a_message_firehose() {
    // A sender firing faster than the tick interval must not starve ticks:
    // time-driven work (retention expiry, gauge publication) is due every
    // interval even while the queue never drains.
    struct TickCounter(Arc<Mutex<u32>>);
    impl Bolt<u64> for TickCounter {
        fn execute(&mut self, _input: u64, _ctx: &mut BoltContext<'_, u64>) {}
        fn tick(&mut self, _ctx: &mut BoltContext<'_, u64>) {
            *self.0.lock() += 1;
        }
    }
    let (tx, rx) = unbounded::<u64>();
    let ticks = Arc::new(Mutex::new(0));
    let mut b = TopologyBuilder::new().with_config(TopologyConfig {
        tick_interval: Duration::from_millis(5),
        ..TopologyConfig::default()
    });
    b.add_source("src", ChannelSource(rx));
    let t2 = Arc::clone(&ticks);
    b.add_bolt("ticky", 1, move |_| Box::new(TickCounter(Arc::clone(&t2))));
    b.connect("src", "ticky", Grouping::Shuffle);
    let topo = b.start();
    for i in 0..100u64 {
        tx.send(i).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    topo.shutdown();
    assert!(*ticks.lock() >= 5, "ticks fired while messages kept arriving");
}

#[test]
#[should_panic(expected = "must be declared after")]
fn cyclic_connection_rejected() {
    let (_tx, rx) = unbounded::<u64>();
    let mut b = TopologyBuilder::new();
    b.add_source("src", ChannelSource(rx));
    b.add_bolt("a", 1, |_| {
        Box::new(Recorder { task: 0, seen: Arc::new(Mutex::new(Vec::new())), reemit: false })
    });
    b.connect("a", "src", Grouping::Shuffle);
}

#[test]
fn bounded_queues_apply_backpressure_without_loss() {
    // A deliberately slow bolt with a tiny queue: the source must block
    // rather than drop — delivery inside the topology is lossless (the
    // property the paper needed from Storm's at-least-once guarantee).
    let (tx, rx) = unbounded();
    let seen = Arc::new(Mutex::new(Vec::new()));
    struct Slow(Arc<Mutex<Vec<(usize, u64)>>>);
    impl Bolt<u64> for Slow {
        fn execute(&mut self, input: u64, _ctx: &mut BoltContext<'_, u64>) {
            std::thread::sleep(Duration::from_micros(300));
            self.0.lock().push((0, input));
        }
    }
    let mut b = TopologyBuilder::new().with_config(TopologyConfig {
        queue_capacity: 4, // tiny: forces the source to wait
        ..TopologyConfig::default()
    });
    b.add_source("src", ChannelSource(rx));
    let seen2 = Arc::clone(&seen);
    b.add_bolt("slow", 1, move |_| Box::new(Slow(Arc::clone(&seen2))));
    b.connect("src", "slow", Grouping::Shuffle);
    let topo = b.start();
    for i in 0..500u64 {
        tx.send(i).unwrap();
    }
    let got = drain(&seen, 500);
    assert_eq!(got.len(), 500, "every message survived the pressure");
    let values: Vec<u64> = got.iter().map(|(_, v)| *v).collect();
    let mut expect: Vec<u64> = (0..500).collect();
    expect.sort_unstable();
    let mut sorted = values.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, expect);
    assert_eq!(values, (0..500).collect::<Vec<u64>>(), "FIFO preserved per channel");
    topo.shutdown();
}
