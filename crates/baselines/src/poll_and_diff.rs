//! Poll-and-diff (§3.1): Meteor's original real-time query mechanism.
//!
//! Every subscription re-executes its query against the database on a fixed
//! interval ("poll", default in Meteor: 10 s) and diffs the fresh result
//! against the last known one ("diff"). Expressiveness is inherited from
//! the pull engine in full — but staleness is bounded only by the interval,
//! and every active subscription inflicts recurring query load on the
//! database, which is what makes the approach collapse with many
//! concurrent real-time queries.

use crate::provider::{Capabilities, ChannelLive, LiveQuery, RealTimeProvider};
use invalidb_client::ClientEvent;
use invalidb_common::{ChangeItem, Key, MatchType, QuerySpec, ResultItem, Version};
use invalidb_core::window::{diff_visible, VisibleEvent, WindowItem};
use invalidb_store::Store;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The poll-and-diff provider.
pub struct PollAndDiff {
    store: Arc<Store>,
    interval: Duration,
    shutdown: Arc<AtomicBool>,
    polls: Arc<AtomicU64>,
}

impl PollAndDiff {
    /// Creates a provider polling at `interval`.
    pub fn new(store: Arc<Store>, interval: Duration) -> Self {
        Self {
            store,
            interval,
            shutdown: Arc::new(AtomicBool::new(false)),
            polls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total pull queries executed so far — the database load this
    /// mechanism inflicts (1 000 subscriptions at a 10 s interval average
    /// 100 queries/s against the store, §3.1).
    pub fn polls_executed(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }
}

impl Drop for PollAndDiff {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl RealTimeProvider for PollAndDiff {
    fn name(&self) -> &'static str {
        "poll-and-diff"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scales_with_write_throughput: true,
            scales_with_queries: false,
            lag_free: false,
            composition: true,
            ordering: true,
            limit: true,
            offset: true,
        }
    }

    fn subscribe(&self, spec: &QuerySpec) -> Result<Box<dyn LiveQuery>, String> {
        let initial = self.store.execute(spec).map_err(|e| e.to_string())?;
        self.polls.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::unbounded();
        let _ = tx.send(ClientEvent::Initial(initial.clone()));
        let cancelled = Arc::new(AtomicBool::new(false));
        {
            let store = Arc::clone(&self.store);
            let spec = spec.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let cancelled = Arc::clone(&cancelled);
            let polls = Arc::clone(&self.polls);
            let interval = self.interval;
            std::thread::Builder::new()
                .name("poll-and-diff".into())
                .spawn(move || {
                    let mut last = initial;
                    while !shutdown.load(Ordering::Relaxed) && !cancelled.load(Ordering::Relaxed) {
                        std::thread::sleep(interval);
                        let fresh = match store.execute(&spec) {
                            Ok(r) => r,
                            Err(_) => continue,
                        };
                        polls.fetch_add(1, Ordering::Relaxed);
                        for change in diff_results(&spec, &last, &fresh) {
                            if tx.send(ClientEvent::Change(change)).is_err() {
                                return; // subscriber gone
                            }
                        }
                        last = fresh;
                    }
                })
                .map_err(|e| e.to_string())?;
        }
        let cancel = move || cancelled.store(true, Ordering::Relaxed);
        Ok(Box::new(ChannelLive {
            rx,
            result: invalidb_client::LiveResult::new(),
            on_drop: Some(Box::new(cancel)),
        }))
    }
}

/// Diffs two pull results into change items.
pub(crate) fn diff_results(spec: &QuerySpec, old: &[ResultItem], new: &[ResultItem]) -> Vec<ChangeItem> {
    if spec.sort.is_empty() {
        diff_unordered(old, new)
    } else {
        let to_window = |items: &[ResultItem]| -> Vec<WindowItem> {
            items
                .iter()
                .filter_map(|r| {
                    r.doc.as_ref().map(|d| WindowItem {
                        key: r.key.clone(),
                        version: r.version,
                        doc: d.clone(),
                    })
                })
                .collect()
        };
        diff_visible(&to_window(old), &to_window(new)).iter().map(visible_to_change).collect()
    }
}

fn diff_unordered(old: &[ResultItem], new: &[ResultItem]) -> Vec<ChangeItem> {
    let old_map: HashMap<&Key, Version> = old.iter().map(|r| (&r.key, r.version)).collect();
    let new_map: HashMap<&Key, Version> = new.iter().map(|r| (&r.key, r.version)).collect();
    let mut changes = Vec::new();
    for r in old {
        if !new_map.contains_key(&r.key) {
            changes.push(ChangeItem {
                match_type: MatchType::Remove,
                item: ResultItem { key: r.key.clone(), version: r.version, doc: None, index: None },
                old_index: None,
            });
        }
    }
    for r in new {
        match old_map.get(&r.key) {
            None => changes.push(ChangeItem {
                match_type: MatchType::Add,
                item: ResultItem {
                    key: r.key.clone(),
                    version: r.version,
                    doc: r.doc.clone(),
                    index: None,
                },
                old_index: None,
            }),
            Some(&v) if v != r.version => changes.push(ChangeItem {
                match_type: MatchType::Change,
                item: ResultItem {
                    key: r.key.clone(),
                    version: r.version,
                    doc: r.doc.clone(),
                    index: None,
                },
                old_index: None,
            }),
            _ => {}
        }
    }
    changes
}

pub(crate) fn visible_to_change(ev: &VisibleEvent) -> ChangeItem {
    match ev {
        VisibleEvent::Add { item, index } => ChangeItem {
            match_type: MatchType::Add,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: None,
        },
        VisibleEvent::Change { item, index } => ChangeItem {
            match_type: MatchType::Change,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: None,
        },
        VisibleEvent::ChangeIndex { item, old_index, index } => ChangeItem {
            match_type: MatchType::ChangeIndex,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: Some(*old_index as u64),
        },
        VisibleEvent::Remove { key, version, old_index } => ChangeItem {
            match_type: MatchType::Remove,
            item: ResultItem { key: key.clone(), version: *version, doc: None, index: None },
            old_index: Some(*old_index as u64),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn subscription_sees_changes_within_interval() {
        let store = Arc::new(Store::new());
        let provider = PollAndDiff::new(Arc::clone(&store), Duration::from_millis(20));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 5i64 } });
        let mut sub = provider.subscribe(&spec).unwrap();
        assert!(matches!(sub.next_event(Duration::from_secs(1)), Some(ClientEvent::Initial(_))));
        store.insert("t", Key::of(1i64), doc! { "n" => 9i64 }).unwrap();
        match sub.next_event(Duration::from_secs(2)) {
            Some(ClientEvent::Change(c)) => assert_eq!(c.match_type, MatchType::Add),
            other => panic!("expected add, got {other:?}"),
        }
        assert!(provider.polls_executed() >= 2, "polling inflicts pull queries");
    }

    #[test]
    fn sorted_diffs_carry_indices() {
        let store = Arc::new(Store::new());
        for (k, n) in [("a", 1i64), ("b", 3)] {
            store.insert("t", Key::of(k), doc! { "n" => n }).unwrap();
        }
        let provider = PollAndDiff::new(Arc::clone(&store), Duration::from_millis(20));
        let spec = QuerySpec::filter("t", doc! {})
            .sorted_by("n", invalidb_common::SortDirection::Asc)
            .with_limit(10);
        let mut sub = provider.subscribe(&spec).unwrap();
        sub.next_event(Duration::from_secs(1)).unwrap();
        store.insert("t", Key::of("c"), doc! { "n" => 2i64 }).unwrap();
        match sub.next_event(Duration::from_secs(2)) {
            Some(ClientEvent::Change(c)) => {
                assert_eq!(c.match_type, MatchType::Add);
                assert_eq!(c.item.index, Some(1), "inserted between a and b");
            }
            other => panic!("expected add, got {other:?}"),
        }
        assert_eq!(sub.result().keys(), vec![Key::of("a"), Key::of("c"), Key::of("b")]);
    }

    #[test]
    fn staleness_is_bounded_by_interval_not_zero() {
        let store = Arc::new(Store::new());
        let provider = PollAndDiff::new(Arc::clone(&store), Duration::from_millis(150));
        let spec = QuerySpec::filter("t", doc! {});
        let mut sub = provider.subscribe(&spec).unwrap();
        sub.next_event(Duration::from_secs(1)).unwrap();
        let t0 = std::time::Instant::now();
        store.insert("t", Key::of(1i64), doc! {}).unwrap();
        sub.next_event(Duration::from_secs(2)).expect("eventually notified");
        assert!(t0.elapsed() >= Duration::from_millis(50), "not lag-free");
    }

    #[test]
    fn unordered_diff_classifies() {
        let mk = |k: &str, v: Version| ResultItem::new(Key::of(k), v, doc! {});
        let old = vec![mk("a", 1), mk("b", 1)];
        let new = vec![mk("b", 2), mk("c", 1)];
        let spec = QuerySpec::filter("t", doc! {});
        let changes = diff_results(&spec, &old, &new);
        let kinds: Vec<MatchType> = changes.iter().map(|c| c.match_type).collect();
        assert_eq!(kinds, vec![MatchType::Remove, MatchType::Change, MatchType::Add]);
    }
}
