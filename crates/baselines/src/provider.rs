//! The provider abstraction and the InvaliDB adapter.

use invalidb_client::{AppServer, ClientEvent, LiveResult, Subscription};
use invalidb_common::QuerySpec;
use std::sync::Arc;
use std::time::Duration;

/// Table 2's capability dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Sustainable write throughput grows with added machines.
    pub scales_with_write_throughput: bool,
    /// Sustainable number of concurrent queries grows with added machines.
    pub scales_with_queries: bool,
    /// Notifications are not staleness-bounded by a polling interval.
    pub lag_free: bool,
    /// Filter composition with AND/OR.
    pub composition: bool,
    /// Ordered (sorted) real-time queries.
    pub ordering: bool,
    /// Limit clauses.
    pub limit: bool,
    /// Offset clauses.
    pub offset: bool,
}

/// A live real-time query, provider-agnostic.
pub trait LiveQuery: Send {
    /// Waits for the next event (applied to the local result).
    fn next_event(&mut self, timeout: Duration) -> Option<ClientEvent>;

    /// Non-blocking variant.
    fn try_next_event(&mut self) -> Option<ClientEvent>;

    /// The locally maintained result.
    fn result(&self) -> &LiveResult;
}

/// A push-based real-time query mechanism.
pub trait RealTimeProvider: Send + Sync {
    /// Mechanism name (for reports).
    fn name(&self) -> &'static str;

    /// What the mechanism supports (Table 2).
    fn capabilities(&self) -> Capabilities;

    /// Subscribes to a real-time query. Errors when the query shape is
    /// unsupported by this mechanism.
    fn subscribe(&self, spec: &QuerySpec) -> Result<Box<dyn LiveQuery>, String>;
}

/// InvaliDB exposed through the provider trait (wraps an [`AppServer`]).
pub struct InvaliDbProvider {
    app: Arc<AppServer>,
}

impl InvaliDbProvider {
    /// Wraps a running application server.
    pub fn new(app: Arc<AppServer>) -> Self {
        Self { app }
    }
}

impl RealTimeProvider for InvaliDbProvider {
    fn name(&self) -> &'static str {
        "invalidb"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scales_with_write_throughput: true,
            scales_with_queries: true,
            lag_free: true,
            composition: true,
            ordering: true,
            limit: true,
            offset: true,
        }
    }

    fn subscribe(&self, spec: &QuerySpec) -> Result<Box<dyn LiveQuery>, String> {
        let sub = self.app.subscribe(spec).map_err(|e| e.to_string())?;
        Ok(Box::new(InvaliDbLive(sub)))
    }
}

struct InvaliDbLive(Subscription);

impl LiveQuery for InvaliDbLive {
    fn next_event(&mut self, timeout: Duration) -> Option<ClientEvent> {
        self.0.events().timeout(timeout).next()
    }

    fn try_next_event(&mut self) -> Option<ClientEvent> {
        self.0.events().non_blocking().next()
    }

    fn result(&self) -> &LiveResult {
        self.0.result()
    }
}

/// Shared channel-backed [`LiveQuery`] used by both baselines.
pub(crate) struct ChannelLive {
    pub(crate) rx: crossbeam::channel::Receiver<ClientEvent>,
    pub(crate) result: LiveResult,
    pub(crate) on_drop: Option<Box<dyn FnOnce() + Send>>,
}

impl ChannelLive {
    fn apply(&mut self, event: &ClientEvent) {
        use invalidb_common::{
            MaintenanceError, Notification, NotificationKind, SubscriptionId, TenantId,
        };
        let kind = match event {
            ClientEvent::Initial(items) => NotificationKind::InitialResult { items: items.clone() },
            ClientEvent::Change(c) => NotificationKind::Change(c.clone()),
            ClientEvent::MaintenanceError(reason) => {
                NotificationKind::Error(MaintenanceError { reason: reason.clone() })
            }
            ClientEvent::ConnectionLost | ClientEvent::Aggregate { .. } => return,
        };
        self.result.apply(&Notification {
            tenant: TenantId::new(""),
            subscription: SubscriptionId(0),
            kind,
            caused_by_write_at: 0,
            trace: None,
        });
    }
}

impl LiveQuery for ChannelLive {
    fn next_event(&mut self, timeout: Duration) -> Option<ClientEvent> {
        let event = self.rx.recv_timeout(timeout).ok()?;
        self.apply(&event);
        Some(event)
    }

    fn try_next_event(&mut self) -> Option<ClientEvent> {
        let event = self.rx.try_recv().ok()?;
        self.apply(&event);
        Some(event)
    }

    fn result(&self) -> &LiveResult {
        &self.result
    }
}

impl Drop for ChannelLive {
    fn drop(&mut self) {
        if let Some(f) = self.on_drop.take() {
            f();
        }
    }
}
