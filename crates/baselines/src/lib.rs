//! Competing real-time query mechanisms (§3.1), behind one provider trait.
//!
//! The paper compares InvaliDB against the two approaches used by
//! state-of-the-art real-time databases:
//!
//! * **poll-and-diff** (Meteor): periodically re-execute every subscribed
//!   query against the database and diff the results — full pull-based
//!   expressiveness, but staleness bounded only by the polling interval and
//!   per-query database load that collapses with many subscriptions;
//! * **log tailing** (Meteor oplog mode, RethinkDB, Parse): every
//!   application server tails the *complete* database change log and matches
//!   all queries against every write — lag-free, scales with the number of
//!   queries, but the single consumer must keep up with the combined write
//!   throughput of all database partitions (no write-stream partitioning).
//!
//! The [`RealTimeProvider`] trait abstracts over both and over InvaliDB
//! itself ([`InvaliDbProvider`]), enabling the Table 2 capability matrix and
//! apples-to-apples scalability comparisons on identical workloads.

mod log_tailing;
mod poll_and_diff;
mod provider;

pub use log_tailing::LogTailing;
pub use poll_and_diff::PollAndDiff;
pub use provider::{Capabilities, InvaliDbProvider, LiveQuery, RealTimeProvider};
