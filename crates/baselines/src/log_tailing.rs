//! Log tailing (§3.1): the mechanism behind Meteor's oplog mode, RethinkDB
//! changefeeds and Parse LiveQuery.
//!
//! One consumer — conceptually the application server — tails the complete
//! database replication log and matches *every* active query against
//! *every* write. Notifications are lag-free and the approach scales with
//! the number of queries (add app servers, partition queries), but the
//! single log consumer must keep up with the combined write throughput of
//! all database partitions: the write stream is never partitioned, which is
//! the scale-prohibitive bottleneck the paper's 2-D scheme removes.
//!
//! Query support mirrors RethinkDB: composition and ordering with `limit`
//! are available, `offset` is not (Table 2).

use crate::poll_and_diff::visible_to_change;
use crate::provider::{Capabilities, ChannelLive, LiveQuery, RealTimeProvider};
use invalidb_client::ClientEvent;
use invalidb_common::{ChangeItem, Key, MatchType, QuerySpec, ResultItem, Version};
use invalidb_core::window::{apply_events, SortedWindow, WindowItem};
use invalidb_query::PreparedQuery;
use invalidb_store::{OplogCursor, OplogEntry, Store};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum SubState {
    Unsorted {
        result: HashMap<Key, Version>,
    },
    Sorted {
        window: SortedWindow,
        /// The subscriber's view (last valid visible state) — the baseline
        /// for renewal deltas, maintained by applying emitted edit scripts.
        client: Vec<WindowItem>,
    },
}

struct TailSub {
    spec: QuerySpec,
    prepared: Arc<dyn PreparedQuery>,
    state: SubState,
    tx: crossbeam::channel::Sender<ClientEvent>,
    slack: u64,
}

#[derive(Default)]
struct Registry {
    subs: HashMap<u64, TailSub>,
    next_id: u64,
}

/// The log-tailing provider. One tailer thread consumes the entire oplog.
pub struct LogTailing {
    store: Arc<Store>,
    registry: Arc<Mutex<Registry>>,
    shutdown: Arc<AtomicBool>,
    /// Writes processed by the single tailer — every write of every
    /// partition flows through here (the bottleneck).
    writes_processed: Arc<AtomicU64>,
    slack: u64,
}

impl LogTailing {
    /// Creates a provider tailing the store's oplog from its current head.
    pub fn new(store: Arc<Store>) -> Self {
        let registry: Arc<Mutex<Registry>> = Arc::new(Mutex::new(Registry::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let writes_processed = Arc::new(AtomicU64::new(0));
        {
            let mut cursor = OplogCursor::new(store.oplog(), store.oplog().head());
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let writes_processed = Arc::clone(&writes_processed);
            let store = Arc::clone(&store);
            std::thread::Builder::new()
                .name("log-tailer".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        for entry in cursor.poll_wait(Duration::from_millis(50)) {
                            writes_processed.fetch_add(1, Ordering::Relaxed);
                            let mut reg = registry.lock();
                            let mut dead = Vec::new();
                            for (id, sub) in reg.subs.iter_mut() {
                                if sub.spec.collection == entry.collection
                                    && !process_entry(sub, &entry, &store)
                                {
                                    dead.push(*id);
                                }
                            }
                            for id in dead {
                                reg.subs.remove(&id);
                            }
                        }
                    }
                })
                .expect("spawn log tailer");
        }
        Self { store, registry, shutdown, writes_processed, slack: 3 }
    }

    /// Writes the single tailer has matched so far.
    pub fn writes_processed(&self) -> u64 {
        self.writes_processed.load(Ordering::Relaxed)
    }

    /// Number of active subscriptions.
    pub fn active_subscriptions(&self) -> usize {
        self.registry.lock().subs.len()
    }
}

impl Drop for LogTailing {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Returns `false` when the subscriber channel is gone.
fn process_entry(sub: &mut TailSub, entry: &OplogEntry, store: &Arc<Store>) -> bool {
    match &mut sub.state {
        SubState::Unsorted { result } => {
            let old = result.get(&entry.key).copied();
            if let Some(v) = old {
                if entry.version <= v {
                    return true;
                }
            }
            let matches = entry.doc.as_ref().is_some_and(|d| sub.prepared.matches(d));
            let match_type = match (old.is_some(), matches) {
                (false, true) => MatchType::Add,
                (true, true) => MatchType::Change,
                (true, false) => MatchType::Remove,
                (false, false) => return true,
            };
            if matches {
                result.insert(entry.key.clone(), entry.version);
            } else {
                result.remove(&entry.key);
            }
            sub.tx
                .send(ClientEvent::Change(ChangeItem {
                    match_type,
                    item: ResultItem {
                        key: entry.key.clone(),
                        version: entry.version,
                        doc: if matches { entry.doc.clone() } else { None },
                        index: None,
                    },
                    old_index: None,
                }))
                .is_ok()
        }
        SubState::Sorted { window, client } => {
            let outcome = window.apply(&entry.key, entry.version, entry.doc.as_ref());
            let events = if outcome.error.is_some() {
                // Co-located with the store: renew immediately (no broker
                // hop, no rate limit — one of log tailing's few perks). The
                // delta is computed from the client's last valid state.
                let rewritten = sub.spec.rewrite_for_bootstrap(sub.slack);
                match store.execute(&rewritten) {
                    Ok(fresh) => window.reseed(sub.slack, &fresh, client),
                    Err(_) => return true,
                }
            } else {
                outcome.events
            };
            apply_events(client, &events);
            for ev in &events {
                if sub.tx.send(ClientEvent::Change(visible_to_change(ev))).is_err() {
                    return false;
                }
            }
            true
        }
    }
}

impl RealTimeProvider for LogTailing {
    fn name(&self) -> &'static str {
        "log-tailing"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scales_with_write_throughput: false,
            scales_with_queries: true,
            lag_free: true,
            composition: true,
            ordering: true,
            limit: true,
            offset: false,
        }
    }

    fn subscribe(&self, spec: &QuerySpec) -> Result<Box<dyn LiveQuery>, String> {
        if spec.offset > 0 {
            return Err("log tailing does not support offset clauses".into());
        }
        let prepared = self.store.prepare(spec).map_err(|e| e.to_string())?;
        let (tx, rx) = crossbeam::channel::unbounded();
        let (state, initial) = if spec.needs_sorting_stage() {
            let rewritten = spec.rewrite_for_bootstrap(self.slack);
            let bootstrap = self.store.execute(&rewritten).map_err(|e| e.to_string())?;
            let window = SortedWindow::new(Arc::clone(&prepared), self.slack, &bootstrap);
            let visible: Vec<ResultItem> = window
                .visible()
                .iter()
                .enumerate()
                .map(|(i, w)| ResultItem {
                    key: w.key.clone(),
                    version: w.version,
                    doc: Some(w.doc.clone()),
                    index: Some(i as u64),
                })
                .collect();
            let client = window.snapshot_visible();
            (SubState::Sorted { window, client }, visible)
        } else {
            let initial = self.store.execute(spec).map_err(|e| e.to_string())?;
            let result = initial.iter().map(|r| (r.key.clone(), r.version)).collect();
            (SubState::Unsorted { result }, initial)
        };
        let _ = tx.send(ClientEvent::Initial(initial));
        let id = {
            let mut reg = self.registry.lock();
            let id = reg.next_id;
            reg.next_id += 1;
            reg.subs.insert(id, TailSub { spec: spec.clone(), prepared, state, tx, slack: self.slack });
            id
        };
        let registry = Arc::clone(&self.registry);
        let cancel = move || {
            registry.lock().subs.remove(&id);
        };
        Ok(Box::new(ChannelLive {
            rx,
            result: invalidb_client::LiveResult::new(),
            on_drop: Some(Box::new(cancel)),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, SortDirection};

    #[test]
    fn lag_free_notifications() {
        let store = Arc::new(Store::new());
        let provider = LogTailing::new(Arc::clone(&store));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 5i64 } });
        let mut sub = provider.subscribe(&spec).unwrap();
        assert!(matches!(sub.next_event(Duration::from_secs(1)), Some(ClientEvent::Initial(_))));
        store.insert("t", Key::of(1i64), doc! { "n" => 7i64 }).unwrap();
        match sub.next_event(Duration::from_secs(2)) {
            Some(ClientEvent::Change(c)) => assert_eq!(c.match_type, MatchType::Add),
            other => panic!("expected add, got {other:?}"),
        }
        assert_eq!(provider.writes_processed(), 1);
    }

    #[test]
    fn single_consumer_sees_entire_write_stream() {
        let store = Arc::new(Store::new());
        let provider = LogTailing::new(Arc::clone(&store));
        let spec = QuerySpec::filter("t", doc! { "n" => 9_999i64 });
        let mut sub = provider.subscribe(&spec).unwrap();
        sub.next_event(Duration::from_secs(1)).unwrap();
        // 100 irrelevant writes: no notifications, but ALL processed by the
        // tailer — the bottleneck the paper's design removes.
        for i in 0..100i64 {
            store.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while provider.writes_processed() < 100 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(provider.writes_processed(), 100);
        assert!(sub.try_next_event().is_none());
    }

    #[test]
    fn sorted_with_limit_supported_offset_rejected() {
        let store = Arc::new(Store::new());
        for i in 0..5i64 {
            store.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
        }
        let provider = LogTailing::new(Arc::clone(&store));
        let offset_spec = QuerySpec::filter("t", doc! {}).with_offset(1);
        assert!(provider.subscribe(&offset_spec).is_err(), "offset unsupported (Table 2)");

        let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(2);
        let mut sub = provider.subscribe(&spec).unwrap();
        sub.next_event(Duration::from_secs(1)).unwrap();
        assert_eq!(sub.result().keys(), vec![Key::of(0i64), Key::of(1i64)]);
        // New smallest item enters at index 0.
        store.insert("t", Key::of(100i64), doc! { "n" => -1i64 }).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sub.result().keys() != vec![Key::of(100i64), Key::of(0i64)]
            && std::time::Instant::now() < deadline
        {
            let _ = sub.next_event(Duration::from_millis(50));
        }
        assert_eq!(sub.result().keys(), vec![Key::of(100i64), Key::of(0i64)]);
    }

    #[test]
    fn sorted_renewal_is_immediate() {
        let store = Arc::new(Store::new());
        for i in 0..10i64 {
            store.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
        }
        let provider = LogTailing::new(Arc::clone(&store));
        let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(2);
        let mut sub = provider.subscribe(&spec).unwrap();
        sub.next_event(Duration::from_secs(1)).unwrap();
        // Exhaust the slack (3) + visible (2): the provider renews in place.
        for i in 0..6i64 {
            store.delete("t", Key::of(i)).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sub.result().keys() != vec![Key::of(6i64), Key::of(7i64)]
            && std::time::Instant::now() < deadline
        {
            let _ = sub.next_event(Duration::from_millis(50));
        }
        assert_eq!(sub.result().keys(), vec![Key::of(6i64), Key::of(7i64)]);
    }

    #[test]
    fn unsubscribe_via_drop() {
        let store = Arc::new(Store::new());
        let provider = LogTailing::new(Arc::clone(&store));
        let spec = QuerySpec::filter("t", doc! {});
        let sub = provider.subscribe(&spec).unwrap();
        assert_eq!(provider.active_subscriptions(), 1);
        drop(sub);
        assert_eq!(provider.active_subscriptions(), 0);
    }
}
