//! Model-based property tests: the store against a naive in-memory model.

use invalidb_common::{doc, Document, Key, QuerySpec, SortDirection, Value};
use invalidb_store::{Store, StoreError, UpdateSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Save(i64, i64),
    IncN(i64, i64),
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..12i64), (-50..50i64)).prop_map(|(k, n)| Op::Insert(k, n)),
        ((0..12i64), (-50..50i64)).prop_map(|(k, n)| Op::Save(k, n)),
        ((0..12i64), (-10..10i64)).prop_map(|(k, d)| Op::IncN(k, d)),
        (0..12i64).prop_map(Op::Delete),
    ]
}

/// Naive model: a map of key -> (version, n).
#[derive(Default)]
struct Model {
    live: BTreeMap<i64, (u64, i64)>,
    tombstones: BTreeMap<i64, u64>,
}

impl Model {
    fn next_version(&self, k: i64) -> u64 {
        self.live
            .get(&k)
            .map(|(v, _)| v + 1)
            .or_else(|| self.tombstones.get(&k).map(|v| v + 1))
            .unwrap_or(1)
    }

    fn apply(&mut self, op: &Op) -> Result<(), ()> {
        match *op {
            Op::Insert(k, n) => {
                if self.live.contains_key(&k) {
                    return Err(());
                }
                let v = self.next_version(k);
                self.tombstones.remove(&k);
                self.live.insert(k, (v, n));
            }
            Op::Save(k, n) => {
                let v = self.next_version(k);
                self.tombstones.remove(&k);
                self.live.insert(k, (v, n));
            }
            Op::IncN(k, d) => match self.live.get_mut(&k) {
                Some((v, n)) => {
                    *v += 1;
                    *n += d;
                }
                None => return Err(()),
            },
            Op::Delete(k) => match self.live.remove(&k) {
                Some((v, _)) => {
                    self.tombstones.insert(k, v + 1);
                }
                None => return Err(()),
            },
        }
        Ok(())
    }
}

fn doc_of(n: i64) -> Document {
    doc! { "n" => n }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every operation's outcome (success/failure, version, after-image)
    /// and the final store content must match the model exactly.
    #[test]
    fn store_matches_model(ops in prop::collection::vec(op_strategy(), 1..120), indexed in any::<bool>()) {
        let store = Store::new();
        if indexed {
            store.collection("m").create_index("n").unwrap();
        }
        let mut model = Model::default();
        for op in &ops {
            let model_result = model.apply(op);
            let store_result = match *op {
                Op::Insert(k, n) => store.insert("m", Key::of(k), doc_of(n)),
                Op::Save(k, n) => store.save("m", Key::of(k), doc_of(n)),
                Op::IncN(k, d) => store.update(
                    "m",
                    Key::of(k),
                    &UpdateSpec::from_document(&doc! { "$inc" => doc! { "n" => d } }).unwrap(),
                ),
                Op::Delete(k) => store.delete("m", Key::of(k)),
            };
            match (model_result, store_result) {
                (Ok(()), Ok(w)) => {
                    let k = match *op {
                        Op::Insert(k, _) | Op::Save(k, _) | Op::IncN(k, _) | Op::Delete(k) => k,
                    };
                    if let Some((v, n)) = model.live.get(&k) {
                        prop_assert_eq!(w.version, *v, "version for {:?}", op);
                        prop_assert_eq!(
                            w.doc.as_ref().and_then(|d| d.get("n")).and_then(Value::as_i64),
                            Some(*n),
                            "after-image for {:?}", op
                        );
                    } else {
                        prop_assert!(w.doc.is_none(), "tombstone for {:?}", op);
                        prop_assert_eq!(w.version, model.tombstones[&k]);
                    }
                }
                (Err(()), Err(StoreError::DuplicateKey(_) | StoreError::NotFound(_))) => {}
                (m, s) => prop_assert!(false, "divergence on {:?}: model {:?} store {:?}", op, m, s),
            }
        }
        // Final contents agree (via an indexed-or-not full scan).
        let all = store.execute(&QuerySpec::filter("m", doc! {})).unwrap();
        prop_assert_eq!(all.len(), model.live.len());
        for item in all {
            let k = item.key.0.as_i64().unwrap();
            let (v, n) = model.live[&k];
            prop_assert_eq!(item.version, v);
            prop_assert_eq!(item.doc.unwrap().get("n").and_then(Value::as_i64), Some(n));
        }
        // Range queries agree with the model, indexed or not.
        let range = QuerySpec::filter("m", doc! { "n" => doc! { "$gte" => -10i64, "$lt" => 10i64 } });
        let got: Vec<i64> = store
            .execute(&range)
            .unwrap()
            .into_iter()
            .map(|r| r.key.0.as_i64().unwrap())
            .collect();
        let expect: Vec<i64> = model
            .live
            .iter()
            .filter(|(_, (_, n))| (-10..10).contains(n))
            .map(|(k, _)| *k)
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// The oplog replays to exactly the final store state.
    #[test]
    fn oplog_replay_reconstructs_state(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let store = Store::new();
        for op in &ops {
            let _ = match *op {
                Op::Insert(k, n) => store.insert("m", Key::of(k), doc_of(n)),
                Op::Save(k, n) => store.save("m", Key::of(k), doc_of(n)),
                Op::IncN(k, d) => store.update(
                    "m",
                    Key::of(k),
                    &UpdateSpec::from_document(&doc! { "$inc" => doc! { "n" => d } }).unwrap(),
                ),
                Op::Delete(k) => store.delete("m", Key::of(k)),
            };
        }
        // Replay the oplog into a fresh map.
        let mut replayed: BTreeMap<Key, (u64, Document)> = BTreeMap::new();
        for entry in store.oplog().read_from(0) {
            match entry.doc {
                Some(doc) => {
                    replayed.insert(entry.key, (entry.version, doc));
                }
                None => {
                    replayed.remove(&entry.key);
                }
            }
        }
        let live = store.collection("m").scan_all();
        prop_assert_eq!(live.len(), replayed.len());
        for (key, version, doc) in live {
            let (rv, rdoc) = replayed.get(&key).expect("key in replay");
            prop_assert_eq!(&version, rv);
            prop_assert_eq!(&doc, rdoc);
        }
    }

    /// Sorted pull queries return a correctly ordered prefix window.
    #[test]
    fn sorted_window_queries_agree_with_full_sort(
        ops in prop::collection::vec(op_strategy(), 1..60),
        offset in 0u64..5,
        limit in 1u64..6,
    ) {
        let store = Store::new();
        for op in &ops {
            let _ = match *op {
                Op::Insert(k, n) => store.insert("m", Key::of(k), doc_of(n)),
                Op::Save(k, n) => store.save("m", Key::of(k), doc_of(n)),
                Op::IncN(k, d) => store.update(
                    "m",
                    Key::of(k),
                    &UpdateSpec::from_document(&doc! { "$inc" => doc! { "n" => d } }).unwrap(),
                ),
                Op::Delete(k) => store.delete("m", Key::of(k)),
            };
        }
        let full = QuerySpec::filter("m", doc! {}).sorted_by("n", SortDirection::Desc);
        let window = full.clone().with_offset(offset).with_limit(limit);
        let full_keys: Vec<Key> = store.execute(&full).unwrap().into_iter().map(|r| r.key).collect();
        let window_keys: Vec<Key> = store.execute(&window).unwrap().into_iter().map(|r| r.key).collect();
        let expect: Vec<Key> = full_keys
            .into_iter()
            .skip(offset as usize)
            .take(limit as usize)
            .collect();
        prop_assert_eq!(window_keys, expect);
    }
}
