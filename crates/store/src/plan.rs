//! A small query planner: picks one index-accelerated access path, with the
//! full filter always re-applied as a residual (indexes narrow the candidate
//! set; they never decide matching on their own).

use invalidb_common::{Document, Value};
use std::ops::Bound;

/// Chosen access path for a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan every record.
    FullScan,
    /// Point lookup on a field index.
    IndexEq {
        /// Indexed field.
        field: String,
        /// Equality value.
        value: Value,
    },
    /// Range scan on a field index.
    IndexRange {
        /// Indexed field.
        field: String,
        /// Lower bound.
        lower: Bound<Value>,
        /// Upper bound.
        upper: Bound<Value>,
    },
}

/// Picks a plan for a wire-form filter given the set of indexed fields.
///
/// Only top-level conjunctive conditions are considered (fields of the
/// filter document), which is the common fast path; anything else falls back
/// to a full scan. Range conditions are clamped to the value's canonical
/// type bracket so e.g. `{n: {$gt: 5}}` does not scan the string section of
/// the index.
pub fn plan_query<'a>(filter: &Document, indexed: impl Iterator<Item = &'a str>) -> Plan {
    let indexed: Vec<&str> = indexed.collect();
    for (field, cond) in filter.iter() {
        if field.starts_with('$') || !indexed.contains(&field) {
            continue;
        }
        match cond {
            // Literal equality (objects with operators handled below).
            Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => {
                if let Some(plan) = plan_operators(field, obj) {
                    return plan;
                }
            }
            literal => {
                // Equality on an array literal also matches documents that
                // *contain* the array as an element; a multikey point lookup
                // would miss whole-array matches, so skip those.
                if !matches!(literal, Value::Array(_)) {
                    return Plan::IndexEq { field: field.to_owned(), value: literal.clone() };
                }
            }
        }
    }
    Plan::FullScan
}

fn plan_operators(field: &str, obj: &Document) -> Option<Plan> {
    if let Some(v) = obj.get("$eq") {
        if !matches!(v, Value::Array(_)) {
            return Some(Plan::IndexEq { field: field.to_owned(), value: v.clone() });
        }
    }
    let mut lower: Bound<Value> = Bound::Unbounded;
    let mut upper: Bound<Value> = Bound::Unbounded;
    let mut bracket_of: Option<u8> = None;
    for (op, v) in obj.iter() {
        let relevant = matches!(op, "$gt" | "$gte" | "$lt" | "$lte");
        if !relevant {
            continue;
        }
        // Range plans only for number/string brackets (where clean bracket
        // sentinels exist); everything else stays a full scan.
        if !matches!(v.type_rank(), 1 | 2) {
            return None;
        }
        if let Some(b) = bracket_of {
            if b != v.type_rank() {
                // Contradictory brackets, e.g. {$gt: 5, $lt: "x"} — cannot
                // match anything under type bracketing, but let the residual
                // filter decide; scan nothing via an empty range.
                return None;
            }
        }
        bracket_of = Some(v.type_rank());
        match op {
            "$gt" => lower = tighten_lower(lower, Bound::Excluded(v.clone())),
            "$gte" => lower = tighten_lower(lower, Bound::Included(v.clone())),
            "$lt" => upper = tighten_upper(upper, Bound::Excluded(v.clone())),
            "$lte" => upper = tighten_upper(upper, Bound::Included(v.clone())),
            _ => unreachable!(),
        }
    }
    let bracket = bracket_of?;
    // Clamp open ends to the bracket boundary.
    if matches!(lower, Bound::Unbounded) {
        lower = bracket_lower(bracket);
    }
    if matches!(upper, Bound::Unbounded) {
        upper = bracket_upper(bracket);
    }
    Some(Plan::IndexRange { field: field.to_owned(), lower, upper })
}

/// Bracket sentinels under the canonical order
/// (Null < numbers < strings < objects < arrays < bools).
fn bracket_lower(rank: u8) -> Bound<Value> {
    match rank {
        1 => Bound::Included(Value::Float(f64::NAN)), // NaN sorts first among numbers
        2 => Bound::Included(Value::String(String::new())),
        _ => Bound::Unbounded,
    }
}

fn bracket_upper(rank: u8) -> Bound<Value> {
    match rank {
        1 => Bound::Included(Value::Float(f64::INFINITY)),
        2 => Bound::Excluded(Value::Object(Document::new())),
        _ => Bound::Unbounded,
    }
}

fn tighten_lower(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    use invalidb_common::canonical_cmp;
    use std::cmp::Ordering;
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match canonical_cmp(x, y) {
                Ordering::Less => b,
                Ordering::Greater => a,
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighten_upper(a: Bound<Value>, b: Bound<Value>) -> Bound<Value> {
    use invalidb_common::canonical_cmp;
    use std::cmp::Ordering;
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match canonical_cmp(x, y) {
                Ordering::Less => a,
                Ordering::Greater => b,
                Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn indexed() -> Vec<&'static str> {
        vec!["n", "name"]
    }

    #[test]
    fn literal_equality_uses_index() {
        let p = plan_query(&doc! { "n" => 5i64 }, indexed().into_iter());
        assert_eq!(p, Plan::IndexEq { field: "n".into(), value: Value::Int(5) });
    }

    #[test]
    fn non_indexed_field_full_scans() {
        let p = plan_query(&doc! { "other" => 5i64 }, indexed().into_iter());
        assert_eq!(p, Plan::FullScan);
    }

    #[test]
    fn range_operators_combine() {
        let p =
            plan_query(&doc! { "n" => doc! { "$gte" => 3i64, "$lt" => 9i64 } }, indexed().into_iter());
        assert_eq!(
            p,
            Plan::IndexRange {
                field: "n".into(),
                lower: Bound::Included(Value::Int(3)),
                upper: Bound::Excluded(Value::Int(9)),
            }
        );
    }

    #[test]
    fn open_range_clamps_to_bracket() {
        let p = plan_query(&doc! { "n" => doc! { "$gt" => 5i64 } }, indexed().into_iter());
        match p {
            Plan::IndexRange { lower, upper, .. } => {
                assert_eq!(lower, Bound::Excluded(Value::Int(5)));
                assert_eq!(upper, Bound::Included(Value::Float(f64::INFINITY)));
            }
            other => panic!("expected range, got {other:?}"),
        }
        let p = plan_query(&doc! { "name" => doc! { "$lt" => "m" } }, indexed().into_iter());
        match p {
            Plan::IndexRange { lower, upper, .. } => {
                assert_eq!(lower, Bound::Included(Value::String(String::new())));
                assert_eq!(upper, Bound::Excluded(Value::String("m".into())));
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn eq_operator_uses_point_lookup() {
        let p = plan_query(&doc! { "n" => doc! { "$eq" => 7i64 } }, indexed().into_iter());
        assert_eq!(p, Plan::IndexEq { field: "n".into(), value: Value::Int(7) });
    }

    #[test]
    fn array_equality_is_not_planned() {
        let p = plan_query(&doc! { "n" => vec![1i64, 2] }, indexed().into_iter());
        assert_eq!(p, Plan::FullScan);
    }

    #[test]
    fn unsupported_operators_fall_back() {
        let p = plan_query(&doc! { "n" => doc! { "$ne" => 5i64 } }, indexed().into_iter());
        assert_eq!(p, Plan::FullScan);
        let p = plan_query(
            &doc! { "$or" => vec![Value::Object(doc! { "n" => 1i64 })] },
            indexed().into_iter(),
        );
        assert_eq!(p, Plan::FullScan);
        let p = plan_query(&doc! { "n" => doc! { "$gt" => true } }, indexed().into_iter());
        assert_eq!(p, Plan::FullScan);
    }

    #[test]
    fn first_indexed_field_wins() {
        let p = plan_query(&doc! { "other" => 1i64, "n" => 5i64 }, indexed().into_iter());
        assert_eq!(p, Plan::IndexEq { field: "n".into(), value: Value::Int(5) });
    }
}
