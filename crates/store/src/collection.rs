//! A single document collection: versioned records, secondary indexes, and
//! query execution.

use crate::index::FieldIndex;
use crate::oplog::{Oplog, OplogOp};
use crate::plan::{plan_query, Plan};
use crate::record::{StoreError, StoredRecord, WriteOp, WriteResult};
use crate::update::UpdateSpec;
use invalidb_common::{Document, Key, Version};
use invalidb_query::PreparedQuery;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

struct Inner {
    records: BTreeMap<Key, StoredRecord>,
    /// Last version of deleted records, so re-inserts continue the version
    /// sequence (required for staleness avoidance across delete/insert).
    tombstones: HashMap<Key, Version>,
    indexes: HashMap<String, FieldIndex>,
}

/// A named, thread-safe document collection.
pub struct Collection {
    name: String,
    oplog: Arc<Oplog>,
    inner: RwLock<Inner>,
}

impl Collection {
    pub(crate) fn new(name: String, oplog: Arc<Oplog>) -> Self {
        Self {
            name,
            oplog,
            inner: RwLock::new(Inner {
                records: BTreeMap::new(),
                tombstones: HashMap::new(),
                indexes: HashMap::new(),
            }),
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True if the collection holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads one record (document and version).
    pub fn get(&self, key: &Key) -> Option<(Version, Document)> {
        let inner = self.inner.read();
        inner.records.get(key).map(|r| (r.version, r.doc.clone()))
    }

    /// Creates a new record. Fails on duplicate keys (like MongoDB insert).
    /// Returns the after-image (`findAndModify` semantics, §5.4).
    pub fn insert(&self, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        let mut inner = self.inner.write();
        if inner.records.contains_key(&key) {
            return Err(StoreError::DuplicateKey(key));
        }
        let version = inner.tombstones.remove(&key).map(|v| v + 1).unwrap_or(1);
        index_insert(&mut inner, &key, &doc);
        inner.records.insert(key.clone(), StoredRecord { version, doc: doc.clone() });
        drop(inner);
        self.oplog.append(&self.name, key.clone(), version, Some(doc.clone()), OplogOp::Insert);
        Ok(WriteResult { key, version, doc: Some(doc), op: WriteOp::Insert })
    }

    /// Inserts or replaces (upsert). Returns the after-image.
    pub fn save(&self, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        let mut inner = self.inner.write();
        let (version, op) = match inner.records.get(&key) {
            Some(existing) => {
                let old_doc = existing.doc.clone();
                index_remove(&mut inner, &key, &old_doc);
                (inner.records.get(&key).expect("held lock").version + 1, WriteOp::Update)
            }
            None => (inner.tombstones.remove(&key).map(|v| v + 1).unwrap_or(1), WriteOp::Insert),
        };
        index_insert(&mut inner, &key, &doc);
        inner.records.insert(key.clone(), StoredRecord { version, doc: doc.clone() });
        drop(inner);
        let oplog_op = if op == WriteOp::Insert { OplogOp::Insert } else { OplogOp::Update };
        self.oplog.append(&self.name, key.clone(), version, Some(doc.clone()), oplog_op);
        Ok(WriteResult { key, version, doc: Some(doc), op })
    }

    /// Applies an update to an existing record; fails if it does not exist.
    /// Returns the after-image.
    pub fn update(&self, key: Key, spec: &UpdateSpec) -> Result<WriteResult, StoreError> {
        let mut inner = self.inner.write();
        let current = inner.records.get(&key).ok_or_else(|| StoreError::NotFound(key.clone()))?;
        let new_doc = spec.apply(&current.doc)?;
        let old_doc = current.doc.clone();
        let version = current.version + 1;
        index_remove(&mut inner, &key, &old_doc);
        index_insert(&mut inner, &key, &new_doc);
        inner.records.insert(key.clone(), StoredRecord { version, doc: new_doc.clone() });
        drop(inner);
        self.oplog.append(&self.name, key.clone(), version, Some(new_doc.clone()), OplogOp::Update);
        Ok(WriteResult { key, version, doc: Some(new_doc), op: WriteOp::Update })
    }

    /// Deletes a record; fails if it does not exist. The returned
    /// after-image is a tombstone (`doc: None`) carrying the next version.
    pub fn delete(&self, key: Key) -> Result<WriteResult, StoreError> {
        let mut inner = self.inner.write();
        let record = inner.records.remove(&key).ok_or_else(|| StoreError::NotFound(key.clone()))?;
        let old_doc = record.doc;
        index_remove(&mut inner, &key, &old_doc);
        let version = record.version + 1;
        inner.tombstones.insert(key.clone(), version);
        drop(inner);
        self.oplog.append(&self.name, key.clone(), version, None, OplogOp::Delete);
        Ok(WriteResult { key, version, doc: None, op: WriteOp::Delete })
    }

    /// Creates a secondary index on a (dotted) field path and backfills it.
    pub fn create_index(&self, field: &str) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.indexes.contains_key(field) {
            return Err(StoreError::IndexExists(field.to_owned()));
        }
        let mut idx = FieldIndex::new();
        for (key, record) in inner.records.iter() {
            idx.insert(field, key, &record.doc);
        }
        inner.indexes.insert(field.to_owned(), idx);
        Ok(())
    }

    /// Names of existing indexes.
    pub fn index_fields(&self) -> Vec<String> {
        self.inner.read().indexes.keys().cloned().collect()
    }

    /// Executes a prepared query: plan, filter, sort, offset, limit.
    /// Returns `(key, version, document)` triples in result order.
    pub fn find(&self, query: &dyn PreparedQuery) -> Vec<(Key, Version, Document)> {
        let spec = query.spec();
        let inner = self.inner.read();
        let plan = plan_query(&spec.filter, inner.indexes.keys().map(String::as_str));
        let mut matched: Vec<(Key, Version, Document)> = Vec::new();
        let mut consider = |key: &Key, inner: &Inner| {
            if let Some(record) = inner.records.get(key) {
                if query.matches(&record.doc) {
                    matched.push((key.clone(), record.version, record.doc.clone()));
                }
            }
        };
        match &plan {
            Plan::FullScan => {
                for (key, record) in inner.records.iter() {
                    if query.matches(&record.doc) {
                        matched.push((key.clone(), record.version, record.doc.clone()));
                    }
                }
            }
            Plan::IndexEq { field, value } => {
                let idx = inner.indexes.get(field).expect("planned index exists");
                for key in idx.lookup_eq(value) {
                    consider(&key, &inner);
                }
            }
            Plan::IndexRange { field, lower, upper } => {
                let idx = inner.indexes.get(field).expect("planned index exists");
                for key in idx.lookup_range(as_ref_bound(lower), as_ref_bound(upper)) {
                    consider(&key, &inner);
                }
            }
        }
        drop(inner);
        if !spec.sort.is_empty() {
            matched.sort_by(|a, b| query.cmp_items((&a.0, &a.2), (&b.0, &b.2)));
        }
        // Index scans return keys in value order, not key order; normalize
        // unsorted results to key order so results are deterministic.
        if spec.sort.is_empty() && !matches!(plan, Plan::FullScan) {
            matched.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let offset = spec.offset.min(matched.len() as u64) as usize;
        let mut matched = matched.split_off(offset);
        if let Some(limit) = spec.limit {
            matched.truncate(limit as usize);
        }
        matched
    }

    /// Restores a record with an exact version (WAL recovery path —
    /// bypasses the oplog so recovery is not re-logged).
    pub(crate) fn restore(&self, key: Key, version: Version, doc: Document) {
        let mut inner = self.inner.write();
        if let Some(existing) = inner.records.get(&key) {
            let old = existing.doc.clone();
            index_remove(&mut inner, &key, &old);
        }
        inner.tombstones.remove(&key);
        index_insert(&mut inner, &key, &doc);
        inner.records.insert(key, StoredRecord { version, doc });
    }

    /// Restores a delete with its exact tombstone version (WAL recovery).
    pub(crate) fn restore_delete(&self, key: Key, version: Version) {
        let mut inner = self.inner.write();
        if let Some(record) = inner.records.remove(&key) {
            let old = record.doc;
            index_remove(&mut inner, &key, &old);
        }
        inner.tombstones.insert(key, version);
    }

    /// Snapshot of tombstone versions (WAL checkpointing).
    pub(crate) fn tombstone_snapshot(&self) -> Vec<(Key, Version)> {
        self.inner.read().tombstones.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Snapshot of all records (tests and tooling).
    pub fn scan_all(&self) -> Vec<(Key, Version, Document)> {
        self.inner.read().records.iter().map(|(k, r)| (k.clone(), r.version, r.doc.clone())).collect()
    }
}

fn as_ref_bound(
    b: &std::ops::Bound<invalidb_common::Value>,
) -> std::ops::Bound<&invalidb_common::Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

fn index_insert(inner: &mut Inner, key: &Key, doc: &Document) {
    let fields: Vec<String> = inner.indexes.keys().cloned().collect();
    for field in fields {
        let idx = inner.indexes.get_mut(&field).expect("just listed");
        idx.insert(&field, key, doc);
    }
}

fn index_remove(inner: &mut Inner, key: &Key, doc: &Document) {
    let fields: Vec<String> = inner.indexes.keys().cloned().collect();
    for field in fields {
        let idx = inner.indexes.get_mut(&field).expect("just listed");
        idx.remove(&field, key, doc);
    }
}
