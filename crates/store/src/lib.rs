//! Embedded pull-based document database.
//!
//! Stands in for the MongoDB deployment of the paper's prototype (§5.4).
//! InvaliDB only requires three things from the primary store, all provided
//! here:
//!
//! 1. **after-image returning writes** — every insert/update/delete returns
//!    the fully specified post-write record state plus a monotonically
//!    increasing per-record version (the `findAndModify` pattern);
//! 2. **pull query execution** — filter/sort/skip/limit over collections,
//!    with *identical semantics* to the real-time engine (both sides share
//!    the `invalidb-query` crate, satisfying §5.3's alignment requirement);
//! 3. **a replication log** (oplog) — consumed by the log-tailing baseline.
//!
//! The store is multi-collection, thread-safe (readers-writer locking per
//! collection), supports MongoDB-style update operators (`$set`, `$inc`,
//! `$push`, …) and optional secondary indexes with a small query planner.

pub mod collection;
pub mod index;
pub mod oplog;
pub mod plan;
pub mod record;
pub mod sharded;
pub mod update;
pub mod wal;

mod store;

pub use collection::Collection;
pub use oplog::{OplogCursor, OplogEntry, OplogOp};
pub use record::{StoreError, WriteOp, WriteResult};
pub use sharded::ShardedStore;
pub use store::Store;
pub use update::UpdateSpec;
