//! The replication log (oplog).
//!
//! Every committed write appends one entry. The log-tailing baseline
//! (`invalidb-baselines`) consumes it through [`OplogCursor`]s — exactly the
//! architecture whose missing write-stream partitioning the paper identifies
//! as the scalability bottleneck of Meteor/RethinkDB/Parse (§3.1).

use invalidb_common::{Document, Key, Version};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Kind of operation recorded in the oplog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OplogOp {
    /// Record creation.
    Insert,
    /// Record modification.
    Update,
    /// Record removal.
    Delete,
}

/// One oplog entry (an after-image plus position).
#[derive(Debug, Clone, PartialEq)]
pub struct OplogEntry {
    /// Monotonic sequence number (store-wide).
    pub seq: u64,
    /// Collection the write targeted.
    pub collection: String,
    /// Primary key.
    pub key: Key,
    /// Record version after the write.
    pub version: Version,
    /// After-image; `None` for deletes.
    pub doc: Option<Document>,
    /// Operation kind.
    pub op: OplogOp,
}

#[derive(Default)]
struct OplogInner {
    entries: Vec<OplogEntry>,
    /// Sequence number of `entries[0]` (entries may be trimmed).
    base_seq: u64,
    next_seq: u64,
}

/// Store-wide append-only oplog with blocking tail cursors.
pub struct Oplog {
    inner: Mutex<OplogInner>,
    appended: Condvar,
}

impl Default for Oplog {
    fn default() -> Self {
        Self::new()
    }
}

impl Oplog {
    /// Creates an empty oplog.
    pub fn new() -> Self {
        Self { inner: Mutex::new(OplogInner::default()), appended: Condvar::new() }
    }

    /// Appends an entry, assigning its sequence number.
    pub fn append(
        &self,
        collection: &str,
        key: Key,
        version: Version,
        doc: Option<Document>,
        op: OplogOp,
    ) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(OplogEntry { seq, collection: collection.to_owned(), key, version, doc, op });
        self.appended.notify_all();
        seq
    }

    /// Sequence number the next write will receive.
    pub fn head(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Drops all entries with `seq <` the given bound (retention trimming).
    pub fn trim_to(&self, min_seq: u64) {
        let mut inner = self.inner.lock();
        let base = inner.base_seq;
        let cut = min_seq.saturating_sub(base).min(inner.entries.len() as u64) as usize;
        if cut > 0 {
            inner.entries.drain(..cut);
            inner.base_seq = base + cut as u64;
        }
    }

    /// Copies entries with `seq >= from`, non-blocking.
    pub fn read_from(&self, from: u64) -> Vec<OplogEntry> {
        let inner = self.inner.lock();
        let start = from.saturating_sub(inner.base_seq) as usize;
        inner.entries.get(start.min(inner.entries.len())..).map(|s| s.to_vec()).unwrap_or_default()
    }

    /// First sequence number still retained (older entries were trimmed).
    pub fn base_seq(&self) -> u64 {
        self.inner.lock().base_seq
    }

    fn wait_for(&self, from: u64, timeout: Duration) -> Vec<OplogEntry> {
        let mut inner = self.inner.lock();
        if inner.next_seq <= from {
            self.appended.wait_for(&mut inner, timeout);
        }
        let start = from.saturating_sub(inner.base_seq) as usize;
        inner.entries.get(start.min(inner.entries.len())..).map(|s| s.to_vec()).unwrap_or_default()
    }
}

/// A tailing cursor over the oplog.
pub struct OplogCursor {
    oplog: Arc<Oplog>,
    next: u64,
}

impl OplogCursor {
    /// Cursor starting at a given sequence number (use `oplog.head()` to
    /// follow only new writes).
    pub fn new(oplog: Arc<Oplog>, from: u64) -> Self {
        Self { oplog, next: from }
    }

    /// Non-blocking poll for new entries.
    pub fn poll(&mut self) -> Vec<OplogEntry> {
        let entries = self.oplog.read_from(self.next);
        if let Some(last) = entries.last() {
            self.next = last.seq + 1;
        }
        entries
    }

    /// Blocking poll: waits up to `timeout` for at least one new entry.
    pub fn poll_wait(&mut self, timeout: Duration) -> Vec<OplogEntry> {
        let entries = self.oplog.wait_for(self.next, timeout);
        if let Some(last) = entries.last() {
            self.next = last.seq + 1;
        }
        entries
    }

    /// The next sequence number this cursor will read.
    pub fn position(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn entry_keys(entries: &[OplogEntry]) -> Vec<u64> {
        entries.iter().map(|e| e.seq).collect()
    }

    #[test]
    fn append_assigns_monotonic_seqs() {
        let log = Oplog::new();
        for i in 0..5i64 {
            let seq = log.append("c", Key::of(i), 1, Some(doc! {}), OplogOp::Insert);
            assert_eq!(seq, i as u64);
        }
        assert_eq!(log.head(), 5);
    }

    #[test]
    fn cursor_sees_only_new_entries_from_head() {
        let log = Arc::new(Oplog::new());
        log.append("c", Key::of(1i64), 1, Some(doc! {}), OplogOp::Insert);
        let mut cur = OplogCursor::new(log.clone(), log.head());
        assert!(cur.poll().is_empty());
        log.append("c", Key::of(2i64), 1, Some(doc! {}), OplogOp::Insert);
        log.append("c", Key::of(3i64), 1, None, OplogOp::Delete);
        assert_eq!(entry_keys(&cur.poll()), vec![1, 2]);
        assert!(cur.poll().is_empty());
    }

    #[test]
    fn cursor_from_zero_replays_everything() {
        let log = Arc::new(Oplog::new());
        log.append("c", Key::of(1i64), 1, Some(doc! {}), OplogOp::Insert);
        log.append("c", Key::of(1i64), 2, Some(doc! { "x" => 1i64 }), OplogOp::Update);
        let mut cur = OplogCursor::new(log, 0);
        let entries = cur.poll();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].version, 2);
    }

    #[test]
    fn trim_preserves_sequence_numbering() {
        let log = Arc::new(Oplog::new());
        for i in 0..10i64 {
            log.append("c", Key::of(i), 1, Some(doc! {}), OplogOp::Insert);
        }
        log.trim_to(6);
        assert_eq!(log.base_seq(), 6);
        let entries = log.read_from(0);
        assert_eq!(entry_keys(&entries), vec![6, 7, 8, 9]);
        let entries = log.read_from(8);
        assert_eq!(entry_keys(&entries), vec![8, 9]);
    }

    #[test]
    fn blocking_poll_wakes_on_append() {
        let log = Arc::new(Oplog::new());
        let mut cur = OplogCursor::new(log.clone(), 0);
        let writer = {
            let log = log.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                log.append("c", Key::of(1i64), 1, Some(doc! {}), OplogOp::Insert);
            })
        };
        let entries = cur.poll_wait(Duration::from_secs(5));
        assert_eq!(entries.len(), 1);
        writer.join().unwrap();
    }

    #[test]
    fn blocking_poll_times_out_quietly() {
        let log = Arc::new(Oplog::new());
        let mut cur = OplogCursor::new(log, 0);
        let entries = cur.poll_wait(Duration::from_millis(10));
        assert!(entries.is_empty());
    }
}
