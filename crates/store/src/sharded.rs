//! Sharded store: scatter-gather over multiple [`Store`] shards.
//!
//! The paper's prototype runs on MongoDB *with sharded collections* (§5.4),
//! and its log-tailing critique hinges on exactly this setup: "the
//! underlying database can be partitioned to scale with write throughput,
//! but change monitoring within the application server cannot" (§3.1). This
//! module provides the sharded substrate: records are hash-partitioned by
//! primary key across N shards (the same stable hash the InvaliDB grid
//! uses), writes route to one shard, and pull queries scatter to all shards
//! and merge — with a streaming k-way merge for sorted queries so
//! `offset`/`limit` windows stay correct across shards.
//!
//! Each shard keeps its own oplog; [`ShardedStore::shard`] exposes them so
//! a log-tailing consumer faces the paper's real problem: one tailer per
//! shard, or falling behind.

use crate::record::{StoreError, WriteResult};
use crate::store::Store;
use crate::update::UpdateSpec;
use invalidb_common::partition::partition_of;
use invalidb_common::{Document, Key, QuerySpec, ResultItem};
use invalidb_query::{PreparedQuery, QueryEngine};
use std::sync::Arc;

/// A hash-sharded document store.
pub struct ShardedStore {
    shards: Vec<Arc<Store>>,
}

impl ShardedStore {
    /// Creates a sharded store with `n` in-memory shards (n ≥ 1), all using
    /// the default MongoDB-compatible engine.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one shard");
        Self { shards: (0..n).map(|_| Arc::new(Store::new())).collect() }
    }

    /// Builds a sharded store over caller-provided shards (e.g. durable
    /// stores opened on separate WAL files).
    pub fn from_shards(shards: Vec<Arc<Store>>) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        Self { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Access to one shard (e.g. to tail its oplog).
    pub fn shard(&self, i: usize) -> &Arc<Store> {
        &self.shards[i]
    }

    /// The shard responsible for a key (same stable hash as the grid).
    pub fn shard_for(&self, key: &Key) -> usize {
        partition_of(key.stable_hash(), self.shards.len())
    }

    fn route(&self, key: &Key) -> &Arc<Store> {
        &self.shards[self.shard_for(key)]
    }

    /// Inserts into the owning shard.
    pub fn insert(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        self.route(&key).insert(collection, key.clone(), doc)
    }

    /// Inserts or replaces in the owning shard.
    pub fn save(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        self.route(&key).save(collection, key.clone(), doc)
    }

    /// Updates in the owning shard.
    pub fn update(
        &self,
        collection: &str,
        key: Key,
        spec: &UpdateSpec,
    ) -> Result<WriteResult, StoreError> {
        self.route(&key).update(collection, key.clone(), spec)
    }

    /// Deletes from the owning shard.
    pub fn delete(&self, collection: &str, key: Key) -> Result<WriteResult, StoreError> {
        self.route(&key).delete(collection, key.clone())
    }

    /// Point read from the owning shard.
    pub fn get(&self, collection: &str, key: &Key) -> Option<(invalidb_common::Version, Document)> {
        self.route(key).collection(collection).get(key)
    }

    /// Scatter-gather query execution with cross-shard merge.
    ///
    /// Every shard executes the filter (and sort) *without* offset/limit —
    /// but with the limit extended to `offset + limit`, since no single
    /// shard can contribute more than the full window — then results merge:
    /// sorted queries k-way-merge by the query comparator; unsorted queries
    /// concatenate in key order. Offset/limit apply to the merged stream.
    pub fn execute(&self, spec: &QuerySpec) -> Result<Vec<ResultItem>, StoreError> {
        if self.shards.len() == 1 {
            return self.shards[0].execute(spec);
        }
        // Per-shard spec: full window from each shard, no offset.
        let mut shard_spec = spec.clone();
        shard_spec.offset = 0;
        shard_spec.limit = spec.limit.map(|l| l + spec.offset);
        let prepared = self.shards[0].prepare(spec)?;
        let mut per_shard: Vec<Vec<ResultItem>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            per_shard.push(shard.execute(&shard_spec)?);
        }
        let mut merged = if spec.sort.is_empty() {
            let mut all: Vec<ResultItem> = per_shard.into_iter().flatten().collect();
            all.sort_by(|a, b| a.key.cmp(&b.key));
            all
        } else {
            merge_sorted(per_shard, prepared.as_ref())
        };
        let offset = (spec.offset as usize).min(merged.len());
        let mut merged = merged.split_off(offset);
        if let Some(limit) = spec.limit {
            merged.truncate(limit as usize);
        }
        // Re-index after the merge.
        let sorted = !spec.sort.is_empty();
        for (i, item) in merged.iter_mut().enumerate() {
            item.index = sorted.then_some(i as u64);
        }
        Ok(merged)
    }

    /// The engine shared by the shards.
    pub fn engine(&self) -> &Arc<dyn QueryEngine> {
        self.shards[0].engine()
    }
}

/// K-way merge of per-shard sorted runs under the query comparator.
fn merge_sorted(runs: Vec<Vec<ResultItem>>, query: &dyn PreparedQuery) -> Vec<ResultItem> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    // Runs are short (≤ offset+limit each); linear head selection is fine.
    loop {
        let mut best: Option<usize> = None;
        for (i, run) in runs.iter().enumerate() {
            let Some(item) = run.get(cursors[i]) else { continue };
            best = match best {
                None => Some(i),
                Some(b) => {
                    let current = &runs[b][cursors[b]];
                    let doc_a = item.doc.as_ref().expect("pull results carry docs");
                    let doc_b = current.doc.as_ref().expect("pull results carry docs");
                    if query.cmp_items((&item.key, doc_a), (&current.key, doc_b)).is_lt() {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            Some(i) => {
                out.push(runs[i][cursors[i]].clone());
                cursors[i] += 1;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, SortDirection, Value};

    fn seeded(n_shards: usize, records: i64) -> ShardedStore {
        let s = ShardedStore::new(n_shards);
        for i in 0..records {
            s.insert("t", Key::of(i), doc! { "n" => i, "bucket" => i % 7 }).unwrap();
        }
        s
    }

    #[test]
    fn records_spread_over_shards() {
        let s = seeded(4, 200);
        let counts: Vec<usize> = (0..4).map(|i| s.shard(i).collection("t").len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 200);
        assert!(counts.iter().all(|&c| c > 20), "rough balance: {counts:?}");
    }

    #[test]
    fn writes_route_deterministically() {
        let s = seeded(4, 0);
        let key = Key::of("fixed");
        s.insert("t", key.clone(), doc! { "n" => 1i64 }).unwrap();
        let shard = s.shard_for(&key);
        assert!(s.shard(shard).collection("t").get(&key).is_some());
        s.save("t", key.clone(), doc! { "n" => 2i64 }).unwrap();
        assert_eq!(s.get("t", &key).unwrap().0, 2, "version continuity on one shard");
        s.delete("t", key.clone()).unwrap();
        assert!(s.get("t", &key).is_none());
    }

    #[test]
    fn scatter_gather_equals_single_store() {
        let sharded = seeded(4, 100);
        let single = seeded(1, 100);
        for spec in [
            QuerySpec::filter("t", doc! { "bucket" => 3i64 }),
            QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 20i64, "$lt" => 60i64 } }),
            QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Desc).with_limit(10),
            QuerySpec::filter("t", doc! {})
                .sorted_by("bucket", SortDirection::Asc)
                .sorted_by("n", SortDirection::Desc)
                .with_offset(5)
                .with_limit(12),
        ] {
            let a: Vec<(Key, Option<u64>)> =
                sharded.execute(&spec).unwrap().into_iter().map(|r| (r.key, r.index)).collect();
            let b: Vec<(Key, Option<u64>)> =
                single.execute(&spec).unwrap().into_iter().map(|r| (r.key, r.index)).collect();
            assert_eq!(a, b, "spec {spec}");
        }
    }

    #[test]
    fn sorted_window_correct_across_shard_boundaries() {
        // The global top-3 may live on one shard entirely; per-shard limits
        // must not starve the merge.
        let s = ShardedStore::new(3);
        for i in 0..30i64 {
            s.insert("t", Key::of(i), doc! { "score" => i }).unwrap();
        }
        let spec = QuerySpec::filter("t", doc! {}).sorted_by("score", SortDirection::Desc).with_limit(3);
        let top: Vec<i64> = s
            .execute(&spec)
            .unwrap()
            .into_iter()
            .map(|r| r.doc.unwrap().get("score").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(top, vec![29, 28, 27]);
    }

    #[test]
    fn per_shard_oplogs_expose_the_log_tailing_problem() {
        let s = seeded(4, 100);
        let per_shard: Vec<u64> = (0..4).map(|i| s.shard(i).oplog().head()).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), 100, "no shard sees the full stream");
        assert!(per_shard.iter().all(|&h| h < 100));
        let _ = Value::Null;
    }
}
