//! The store facade: named collections, a shared oplog, and a configured
//! query engine.

use crate::collection::Collection;
use crate::oplog::Oplog;
use crate::record::{StoreError, WriteResult};
use crate::update::UpdateSpec;
use invalidb_common::{Document, Key, QuerySpec, ResultItem};
use invalidb_query::{MongoQueryEngine, PreparedQuery, QueryEngine};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An embedded multi-collection document store.
///
/// In-memory by default ([`Store::new`]); durable when opened on a
/// write-ahead log ([`Store::open`]).
pub struct Store {
    engine: Arc<dyn QueryEngine>,
    oplog: Arc<Oplog>,
    collections: RwLock<HashMap<String, Arc<Collection>>>,
    wal: parking_lot::Mutex<Option<crate::wal::WalHandle>>,
}

impl Store {
    /// Store with the MongoDB-compatible engine (the production default).
    pub fn new() -> Self {
        Self::with_engine(Arc::new(MongoQueryEngine))
    }

    /// Store with a custom query engine (pluggability, §5.3).
    pub fn with_engine(engine: Arc<dyn QueryEngine>) -> Self {
        Self {
            engine,
            oplog: Arc::new(Oplog::new()),
            collections: RwLock::new(HashMap::new()),
            wal: parking_lot::Mutex::new(None),
        }
    }

    pub(crate) fn attach_wal(&self, handle: crate::wal::WalHandle) {
        *self.wal.lock() = Some(handle);
    }

    pub(crate) fn wal_writer(
        &self,
    ) -> Option<(std::path::PathBuf, Arc<parking_lot::Mutex<std::io::BufWriter<std::fs::File>>>)> {
        self.wal.lock().as_ref().map(|h| (h.path.clone(), Arc::clone(&h.writer)))
    }

    /// The configured query engine.
    pub fn engine(&self) -> &Arc<dyn QueryEngine> {
        &self.engine
    }

    /// The store-wide replication log.
    pub fn oplog(&self) -> Arc<Oplog> {
        Arc::clone(&self.oplog)
    }

    /// Gets (or lazily creates) a collection.
    pub fn collection(&self, name: &str) -> Arc<Collection> {
        if let Some(c) = self.collections.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.collections.write();
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(Collection::new(name.to_owned(), Arc::clone(&self.oplog)))),
        )
    }

    /// Names of existing collections.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().keys().cloned().collect()
    }

    /// Inserts into a collection (error on duplicate key).
    pub fn insert(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        self.collection(collection).insert(key, doc)
    }

    /// Inserts or replaces.
    pub fn save(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        self.collection(collection).save(key, doc)
    }

    /// Updates an existing record.
    pub fn update(
        &self,
        collection: &str,
        key: Key,
        spec: &UpdateSpec,
    ) -> Result<WriteResult, StoreError> {
        self.collection(collection).update(key, spec)
    }

    /// Deletes a record.
    pub fn delete(&self, collection: &str, key: Key) -> Result<WriteResult, StoreError> {
        self.collection(collection).delete(key)
    }

    /// Compiles a query through the configured engine.
    pub fn prepare(&self, spec: &QuerySpec) -> Result<Arc<dyn PreparedQuery>, StoreError> {
        self.engine.prepare(spec).map_err(|e| StoreError::BadQuery(e.to_string()))
    }

    /// Executes a pull-based query, returning result items in query order
    /// (sorted queries carry their position in `index`).
    pub fn execute(&self, spec: &QuerySpec) -> Result<Vec<ResultItem>, StoreError> {
        let prepared = self.prepare(spec)?;
        let rows = self.collection(&spec.collection).find(prepared.as_ref());
        let sorted = !spec.sort.is_empty();
        Ok(rows
            .into_iter()
            .enumerate()
            .map(|(i, (key, version, doc))| ResultItem {
                key,
                version,
                doc: Some(doc),
                index: sorted.then_some(i as u64),
            })
            .collect())
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, SortDirection, Value};

    fn seed_articles(store: &Store) {
        // Figure 3's working example.
        for (id, title, year) in [
            (5i64, "DB Fun", 2018i64),
            (8, "No SQL!", 2018),
            (3, "BaaS For Dummies", 2017),
            (4, "Query Languages", 2017),
            (7, "Streams in Action", 2016),
            (9, "SaaS For Dummies", 2016),
        ] {
            store.insert("articles", Key::of(id), doc! { "title" => title, "year" => year }).unwrap();
        }
    }

    #[test]
    fn crud_with_versions_and_after_images() {
        let store = Store::new();
        let w = store.insert("t", Key::of("a"), doc! { "n" => 1i64 }).unwrap();
        assert_eq!(w.version, 1);
        assert_eq!(w.doc.as_ref().unwrap().get("n"), Some(&Value::Int(1)));
        let w = store.save("t", Key::of("a"), doc! { "n" => 2i64 }).unwrap();
        assert_eq!(w.version, 2);
        let w = store
            .update(
                "t",
                Key::of("a"),
                &UpdateSpec::from_document(&doc! { "$inc" => doc! { "n" => 5i64 } }).unwrap(),
            )
            .unwrap();
        assert_eq!(w.version, 3);
        assert_eq!(w.doc.as_ref().unwrap().get("n"), Some(&Value::Int(7)));
        let w = store.delete("t", Key::of("a")).unwrap();
        assert_eq!(w.version, 4);
        assert!(w.doc.is_none(), "delete after-image is null");
        // Re-insert continues the version sequence (staleness avoidance).
        let w = store.insert("t", Key::of("a"), doc! {}).unwrap();
        assert_eq!(w.version, 5);
    }

    #[test]
    fn insert_duplicate_and_missing_updates_error() {
        let store = Store::new();
        store.insert("t", Key::of(1i64), doc! {}).unwrap();
        assert!(matches!(store.insert("t", Key::of(1i64), doc! {}), Err(StoreError::DuplicateKey(_))));
        assert!(matches!(store.delete("t", Key::of(2i64)), Err(StoreError::NotFound(_))));
        assert!(matches!(
            store.update("t", Key::of(2i64), &UpdateSpec::Replace(doc! {})),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn paper_figure3_query() {
        let store = Store::new();
        seed_articles(&store);
        // SELECT id, title, year FROM articles ORDER BY year DESC OFFSET 2 LIMIT 3
        let spec = QuerySpec::filter("articles", doc! {})
            .sorted_by("year", SortDirection::Desc)
            .with_offset(2)
            .with_limit(3);
        let result = store.execute(&spec).unwrap();
        let titles: Vec<&str> = result
            .iter()
            .map(|r| r.doc.as_ref().unwrap().get("title").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(titles, vec!["BaaS For Dummies", "Query Languages", "Streams in Action"]);
        assert_eq!(result[0].index, Some(0));
        assert_eq!(result[2].index, Some(2));
    }

    #[test]
    fn bootstrap_rewrite_returns_offset_result_and_slack() {
        let store = Store::new();
        seed_articles(&store);
        let spec = QuerySpec::filter("articles", doc! {})
            .sorted_by("year", SortDirection::Desc)
            .with_offset(2)
            .with_limit(3);
        let rewritten = spec.rewrite_for_bootstrap(1);
        let result = store.execute(&rewritten).unwrap();
        // offset(2) + limit(3) + slack(1) = 6 items.
        assert_eq!(result.len(), 6);
        let first = result[0].doc.as_ref().unwrap().get("title").unwrap().as_str().unwrap();
        assert_eq!(first, "DB Fun", "offset items included");
    }

    #[test]
    fn filtered_queries() {
        let store = Store::new();
        seed_articles(&store);
        let spec = QuerySpec::filter("articles", doc! { "year" => doc! { "$gte" => 2017i64 } });
        let result = store.execute(&spec).unwrap();
        assert_eq!(result.len(), 4);
        assert!(result.iter().all(|r| r.index.is_none()), "unsorted results carry no index");
    }

    #[test]
    fn indexed_query_agrees_with_full_scan() {
        let store = Store::new();
        for i in 0..100i64 {
            store.insert("t", Key::of(i), doc! { "n" => i % 10, "s" => format!("v{}", i % 7) }).unwrap();
        }
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 3i64, "$lt" => 6i64 } });
        let unindexed = store.execute(&spec).unwrap();
        store.collection("t").create_index("n").unwrap();
        let indexed = store.execute(&spec).unwrap();
        assert_eq!(unindexed, indexed);
        assert_eq!(indexed.len(), 30);
        // Point lookups too.
        let spec = QuerySpec::filter("t", doc! { "s" => "v3" });
        let unindexed = store.execute(&spec).unwrap();
        store.collection("t").create_index("s").unwrap();
        let indexed = store.execute(&spec).unwrap();
        assert_eq!(unindexed, indexed);
    }

    #[test]
    fn index_stays_consistent_across_updates_and_deletes() {
        let store = Store::new();
        store.collection("t").create_index("n").unwrap();
        store.insert("t", Key::of(1i64), doc! { "n" => 1i64 }).unwrap();
        store.insert("t", Key::of(2i64), doc! { "n" => 2i64 }).unwrap();
        store.save("t", Key::of(1i64), doc! { "n" => 5i64 }).unwrap();
        store.delete("t", Key::of(2i64)).unwrap();
        let spec = QuerySpec::filter("t", doc! { "n" => 5i64 });
        assert_eq!(store.execute(&spec).unwrap().len(), 1);
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$lte" => 2i64 } });
        assert_eq!(store.execute(&spec).unwrap().len(), 0);
        assert!(store.collection("t").create_index("n").is_err(), "duplicate index rejected");
    }

    #[test]
    fn oplog_records_every_write() {
        let store = Store::new();
        store.insert("a", Key::of(1i64), doc! {}).unwrap();
        store.save("b", Key::of(1i64), doc! {}).unwrap();
        store.delete("a", Key::of(1i64)).unwrap();
        let entries = store.oplog().read_from(0);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].collection, "a");
        assert_eq!(entries[1].collection, "b");
        assert!(entries[2].doc.is_none());
    }

    #[test]
    fn bad_query_surfaces_engine_error() {
        let store = Store::new();
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$bogus" => 1i64 } });
        assert!(matches!(store.execute(&spec), Err(StoreError::BadQuery(_))));
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let store = Arc::new(Store::new());
        store.insert("t", Key::of("ctr"), doc! { "n" => 0i64 }).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let inc =
                        UpdateSpec::from_document(&doc! { "$inc" => doc! { "n" => 1i64 } }).unwrap();
                    for _ in 0..100 {
                        store.update("t", Key::of("ctr"), &inc).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (version, doc) = store.collection("t").get(&Key::of("ctr")).unwrap();
        assert_eq!(doc.get("n"), Some(&Value::Int(800)));
        assert_eq!(version, 801);
    }
}
