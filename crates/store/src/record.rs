//! Record-level types and store errors.

use invalidb_common::{Document, Key, Version};
use std::fmt;

/// A record as stored inside a collection.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    /// Per-record version, starting at 1 and incremented on every write.
    pub version: Version,
    /// Current document content.
    pub doc: Document,
}

/// Kind of write that produced a [`WriteResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOp {
    /// A new record was created.
    Insert,
    /// An existing record was modified (or replaced).
    Update,
    /// The record was removed.
    Delete,
}

/// The outcome of a write: exactly the after-image InvaliDB needs (§5.4).
///
/// For deletes, `doc` is `None` — "the after-image of a deleted entity is
/// null and therefore does not have to be retrieved from the database".
#[derive(Debug, Clone, PartialEq)]
pub struct WriteResult {
    /// Primary key of the written record.
    pub key: Key,
    /// Version after the write (tombstone version for deletes).
    pub version: Version,
    /// Post-write record state; `None` for deletes.
    pub doc: Option<Document>,
    /// What kind of write happened.
    pub op: WriteOp,
}

/// Errors surfaced by the store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Insert with a primary key that already exists.
    DuplicateKey(Key),
    /// Update/delete on a key that does not exist.
    NotFound(Key),
    /// An update operator could not be applied (e.g. `$inc` on a string).
    BadUpdate(String),
    /// The query could not be prepared by the configured engine.
    BadQuery(String),
    /// The named index already exists.
    IndexExists(String),
    /// Write-ahead-log I/O failure.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            StoreError::NotFound(k) => write!(f, "key not found: {k}"),
            StoreError::BadUpdate(msg) => write!(f, "invalid update: {msg}"),
            StoreError::BadQuery(msg) => write!(f, "invalid query: {msg}"),
            StoreError::IndexExists(field) => write!(f, "index on `{field}` already exists"),
            StoreError::Io(msg) => write!(f, "write-ahead log I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
