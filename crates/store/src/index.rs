//! Secondary indexes.
//!
//! A [`FieldIndex`] maps field values to the primary keys of records
//! containing them, ordered by the canonical value order so range scans are
//! possible. Array fields are *multikey*: every element is indexed. Missing
//! fields index as `Null` (so `{field: null}` queries stay index-eligible).

use invalidb_common::{Document, Key, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Ordered index over one (dotted) field path.
#[derive(Debug, Default)]
pub struct FieldIndex {
    /// field value -> primary keys of documents holding that value.
    buckets: BTreeMap<Key, BTreeSet<Key>>,
}

impl FieldIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Values a document contributes to this index for `path`.
    fn index_values(doc: &Document, path: &str) -> Vec<Value> {
        let candidates = invalidb_query::path::resolve(doc, path);
        if candidates.is_empty() {
            return vec![Value::Null];
        }
        let mut out = Vec::with_capacity(candidates.len());
        for c in candidates {
            match c {
                Value::Array(items) if !items.is_empty() => out.extend(items.iter().cloned()),
                Value::Array(_) => out.push(Value::Null),
                other => out.push(other.clone()),
            }
        }
        out
    }

    /// Indexes a document under its primary key.
    pub fn insert(&mut self, path: &str, pk: &Key, doc: &Document) {
        for v in Self::index_values(doc, path) {
            self.buckets.entry(Key(v)).or_default().insert(pk.clone());
        }
    }

    /// Removes a document's entries.
    pub fn remove(&mut self, path: &str, pk: &Key, doc: &Document) {
        for v in Self::index_values(doc, path) {
            if let Some(set) = self.buckets.get_mut(&Key(v.clone())) {
                set.remove(pk);
                if set.is_empty() {
                    self.buckets.remove(&Key(v));
                }
            }
        }
    }

    /// Primary keys of documents whose field equals `value`.
    pub fn lookup_eq(&self, value: &Value) -> Vec<Key> {
        self.buckets
            .get(&Key(value.clone()))
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Primary keys of documents whose field lies in the value range.
    /// Results are deduplicated (multikey documents can hit several buckets).
    pub fn lookup_range(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> Vec<Key> {
        let to_key = |b: Bound<&Value>| match b {
            Bound::Included(v) => Bound::Included(Key(v.clone())),
            Bound::Excluded(v) => Bound::Excluded(Key(v.clone())),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut seen = BTreeSet::new();
        for (_, pks) in self.buckets.range((to_key(lower), to_key(upper))) {
            seen.extend(pks.iter().cloned());
        }
        seen.into_iter().collect()
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn keys(v: Vec<Key>) -> Vec<String> {
        v.into_iter().map(|k| k.to_string()).collect()
    }

    #[test]
    fn eq_lookup() {
        let mut idx = FieldIndex::new();
        idx.insert("n", &Key::of("a"), &doc! { "n" => 5i64 });
        idx.insert("n", &Key::of("b"), &doc! { "n" => 5i64 });
        idx.insert("n", &Key::of("c"), &doc! { "n" => 7i64 });
        assert_eq!(keys(idx.lookup_eq(&Value::Int(5))).len(), 2);
        assert_eq!(keys(idx.lookup_eq(&Value::Int(7))), vec!["\"c\""]);
        assert!(idx.lookup_eq(&Value::Int(9)).is_empty());
        // Cross-numeric equality via canonical keys.
        assert_eq!(idx.lookup_eq(&Value::Float(5.0)).len(), 2);
    }

    #[test]
    fn range_lookup() {
        let mut idx = FieldIndex::new();
        for i in 0..10i64 {
            idx.insert("n", &Key::of(i), &doc! { "n" => i });
        }
        let pks = idx.lookup_range(Bound::Included(&Value::Int(3)), Bound::Excluded(&Value::Int(6)));
        assert_eq!(pks.len(), 3);
    }

    #[test]
    fn multikey_arrays() {
        let mut idx = FieldIndex::new();
        let d = doc! { "tags" => vec!["x", "y"] };
        idx.insert("tags", &Key::of(1i64), &d);
        assert_eq!(idx.lookup_eq(&Value::from("x")).len(), 1);
        assert_eq!(idx.lookup_eq(&Value::from("y")).len(), 1);
        // Range spanning both values must dedupe to a single pk.
        let pks =
            idx.lookup_range(Bound::Included(&Value::from("x")), Bound::Included(&Value::from("y")));
        assert_eq!(pks.len(), 1);
        idx.remove("tags", &Key::of(1i64), &d);
        assert!(idx.lookup_eq(&Value::from("x")).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn missing_field_indexes_as_null() {
        let mut idx = FieldIndex::new();
        idx.insert("n", &Key::of(1i64), &doc! { "other" => 1i64 });
        assert_eq!(idx.lookup_eq(&Value::Null).len(), 1);
    }

    #[test]
    fn remove_then_reinsert_updated_doc() {
        let mut idx = FieldIndex::new();
        let old = doc! { "n" => 1i64 };
        let new = doc! { "n" => 2i64 };
        idx.insert("n", &Key::of("k"), &old);
        idx.remove("n", &Key::of("k"), &old);
        idx.insert("n", &Key::of("k"), &new);
        assert!(idx.lookup_eq(&Value::Int(1)).is_empty());
        assert_eq!(idx.lookup_eq(&Value::Int(2)).len(), 1);
    }
}
