//! MongoDB-style update specifications.
//!
//! An update either replaces the whole document or applies a list of
//! field-level operators: `$set`, `$unset`, `$inc`, `$mul`, `$min`, `$max`,
//! `$push`, `$pull`, `$rename`.

use crate::record::StoreError;
use invalidb_common::{canonical_cmp, canonical_eq, Document, Value};
use std::cmp::Ordering;

/// How to modify an existing document.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateSpec {
    /// Replace the entire document (primary key stays).
    Replace(Document),
    /// Apply operators in order.
    Ops(Vec<UpdateOp>),
}

/// One update operator.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `$set` a (dotted) path to a value.
    Set(String, Value),
    /// `$unset` a (dotted) path.
    Unset(String),
    /// `$inc` a numeric path.
    Inc(String, Value),
    /// `$mul` a numeric path.
    Mul(String, Value),
    /// `$min` — set if the operand is smaller.
    Min(String, Value),
    /// `$max` — set if the operand is larger.
    Max(String, Value),
    /// `$push` a value onto an array path (creates the array if missing).
    Push(String, Value),
    /// `$pull` all elements equal to the operand from an array path.
    Pull(String, Value),
    /// `$rename` a top-level field.
    Rename(String, String),
}

impl UpdateSpec {
    /// Parses the MongoDB update-document syntax, e.g.
    /// `{"$set": {"a": 1}, "$inc": {"n": 2}}`. A document without any
    /// `$`-operators is a full replacement.
    pub fn from_document(d: &Document) -> Result<UpdateSpec, StoreError> {
        let has_ops = d.keys().any(|k| k.starts_with('$'));
        if !has_ops {
            return Ok(UpdateSpec::Replace(d.clone()));
        }
        let mut ops = Vec::new();
        for (op, operand) in d.iter() {
            let fields = operand
                .as_object()
                .ok_or_else(|| StoreError::BadUpdate(format!("`{op}` expects an object")))?;
            for (path, v) in fields.iter() {
                let path = path.to_owned();
                let v = v.clone();
                ops.push(match op {
                    "$set" => UpdateOp::Set(path, v),
                    "$unset" => UpdateOp::Unset(path),
                    "$inc" => UpdateOp::Inc(path, v),
                    "$mul" => UpdateOp::Mul(path, v),
                    "$min" => UpdateOp::Min(path, v),
                    "$max" => UpdateOp::Max(path, v),
                    "$push" => UpdateOp::Push(path, v),
                    "$pull" => UpdateOp::Pull(path, v),
                    "$rename" => {
                        let to = v
                            .as_str()
                            .ok_or_else(|| StoreError::BadUpdate("`$rename` expects a string".into()))?;
                        UpdateOp::Rename(path, to.to_owned())
                    }
                    other => return Err(StoreError::BadUpdate(format!("unknown operator `{other}`"))),
                });
            }
        }
        Ok(UpdateSpec::Ops(ops))
    }

    /// Applies the update to a document, producing the new state.
    pub fn apply(&self, current: &Document) -> Result<Document, StoreError> {
        match self {
            UpdateSpec::Replace(doc) => Ok(doc.clone()),
            UpdateSpec::Ops(ops) => {
                let mut doc = current.clone();
                for op in ops {
                    apply_op(&mut doc, op)?;
                }
                Ok(doc)
            }
        }
    }
}

fn apply_op(doc: &mut Document, op: &UpdateOp) -> Result<(), StoreError> {
    match op {
        UpdateOp::Set(path, v) => {
            doc.set_path(path, v.clone()).map_err(|e| StoreError::BadUpdate(e.to_string()))?;
        }
        UpdateOp::Unset(path) => {
            doc.remove_path(path);
        }
        UpdateOp::Inc(path, delta) => {
            arith(doc, path, delta, "$inc", |a, b| a + b, |a, b| a.checked_add(b))?
        }
        UpdateOp::Mul(path, factor) => {
            arith(doc, path, factor, "$mul", |a, b| a * b, |a, b| a.checked_mul(b))?
        }
        UpdateOp::Min(path, v) => {
            let replace = match doc.get_path(path) {
                None => true,
                Some(cur) => canonical_cmp(v, cur) == Ordering::Less,
            };
            if replace {
                doc.set_path(path, v.clone()).map_err(|e| StoreError::BadUpdate(e.to_string()))?;
            }
        }
        UpdateOp::Max(path, v) => {
            let replace = match doc.get_path(path) {
                None => true,
                Some(cur) => canonical_cmp(v, cur) == Ordering::Greater,
            };
            if replace {
                doc.set_path(path, v.clone()).map_err(|e| StoreError::BadUpdate(e.to_string()))?;
            }
        }
        UpdateOp::Push(path, v) => match doc.get_path(path) {
            None => {
                doc.set_path(path, Value::Array(vec![v.clone()]))
                    .map_err(|e| StoreError::BadUpdate(e.to_string()))?;
            }
            Some(Value::Array(_)) => {
                let mut arr = match doc.get_path(path) {
                    Some(Value::Array(items)) => items.clone(),
                    _ => unreachable!("checked above"),
                };
                arr.push(v.clone());
                doc.set_path(path, Value::Array(arr))
                    .map_err(|e| StoreError::BadUpdate(e.to_string()))?;
            }
            Some(other) => {
                return Err(StoreError::BadUpdate(format!(
                    "`$push` target `{path}` is {}, not an array",
                    other.type_name()
                )))
            }
        },
        UpdateOp::Pull(path, v) => {
            if let Some(Value::Array(items)) = doc.get_path(path) {
                let filtered: Vec<Value> =
                    items.iter().filter(|e| !canonical_eq(e, v)).cloned().collect();
                doc.set_path(path, Value::Array(filtered))
                    .map_err(|e| StoreError::BadUpdate(e.to_string()))?;
            }
        }
        UpdateOp::Rename(from, to) => {
            if let Some(v) = doc.remove(from) {
                doc.insert(to.clone(), v);
            }
        }
    }
    Ok(())
}

fn arith(
    doc: &mut Document,
    path: &str,
    operand: &Value,
    op_name: &str,
    float_op: impl Fn(f64, f64) -> f64,
    int_op: impl Fn(i64, i64) -> Option<i64>,
) -> Result<(), StoreError> {
    if !operand.is_number() {
        return Err(StoreError::BadUpdate(format!("`{op_name}` operand must be numeric")));
    }
    let new = match doc.get_path(path) {
        None => {
            // Missing fields start from the additive/multiplicative identity
            // like MongoDB ($inc treats missing as 0; $mul as 0 too).
            match op_name {
                "$inc" => operand.clone(),
                _ => Value::Int(0),
            }
        }
        Some(cur) if cur.is_number() => match (cur, operand) {
            (Value::Int(a), Value::Int(b)) => match int_op(*a, *b) {
                Some(n) => Value::Int(n),
                None => Value::Float(float_op(*a as f64, *b as f64)),
            },
            (a, b) => Value::Float(float_op(
                a.as_f64().expect("checked numeric"),
                b.as_f64().expect("checked numeric"),
            )),
        },
        Some(other) => {
            return Err(StoreError::BadUpdate(format!(
                "`{op_name}` target `{path}` is {}, not a number",
                other.type_name()
            )))
        }
    };
    doc.set_path(path, new).map_err(|e| StoreError::BadUpdate(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn replace_vs_ops_detection() {
        let plain = doc! { "a" => 1i64 };
        assert!(matches!(UpdateSpec::from_document(&plain).unwrap(), UpdateSpec::Replace(_)));
        let ops = doc! { "$set" => doc! { "a" => 1i64 } };
        assert!(matches!(UpdateSpec::from_document(&ops).unwrap(), UpdateSpec::Ops(_)));
    }

    #[test]
    fn set_unset_nested() {
        let spec = UpdateSpec::from_document(&doc! {
            "$set" => doc! { "user.name" => "ada", "n" => 1i64 },
            "$unset" => doc! { "old" => 1i64 },
        })
        .unwrap();
        let out = spec.apply(&doc! { "old" => true }).unwrap();
        assert_eq!(out.get_path("user.name"), Some(&Value::String("ada".into())));
        assert_eq!(out.get("n"), Some(&Value::Int(1)));
        assert_eq!(out.get("old"), None);
    }

    #[test]
    fn inc_mul_semantics() {
        let cur = doc! { "i" => 10i64, "f" => 1.5f64 };
        let spec = UpdateSpec::Ops(vec![
            UpdateOp::Inc("i".into(), Value::Int(5)),
            UpdateOp::Inc("f".into(), Value::Float(0.5)),
            UpdateOp::Inc("fresh".into(), Value::Int(3)),
            UpdateOp::Mul("i".into(), Value::Int(2)),
        ]);
        let out = spec.apply(&cur).unwrap();
        assert_eq!(out.get("i"), Some(&Value::Int(30)));
        assert_eq!(out.get("f"), Some(&Value::Float(2.0)));
        assert_eq!(out.get("fresh"), Some(&Value::Int(3)));
    }

    #[test]
    fn int_overflow_promotes_to_float() {
        let cur = doc! { "i" => i64::MAX };
        let out = UpdateSpec::Ops(vec![UpdateOp::Inc("i".into(), Value::Int(1))]).apply(&cur).unwrap();
        assert!(matches!(out.get("i"), Some(Value::Float(_))));
    }

    #[test]
    fn min_max() {
        let cur = doc! { "n" => 5i64 };
        let out = UpdateSpec::Ops(vec![UpdateOp::Min("n".into(), Value::Int(3))]).apply(&cur).unwrap();
        assert_eq!(out.get("n"), Some(&Value::Int(3)));
        let out = UpdateSpec::Ops(vec![UpdateOp::Min("n".into(), Value::Int(9))]).apply(&cur).unwrap();
        assert_eq!(out.get("n"), Some(&Value::Int(5)));
        let out = UpdateSpec::Ops(vec![UpdateOp::Max("n".into(), Value::Int(9))]).apply(&cur).unwrap();
        assert_eq!(out.get("n"), Some(&Value::Int(9)));
    }

    #[test]
    fn push_pull() {
        let cur = doc! { "tags" => vec!["a", "b", "a"] };
        let out = UpdateSpec::Ops(vec![UpdateOp::Push("tags".into(), "c".into())]).apply(&cur).unwrap();
        assert_eq!(out.get("tags"), Some(&Value::from(vec!["a", "b", "a", "c"])));
        let out = UpdateSpec::Ops(vec![UpdateOp::Pull("tags".into(), "a".into())]).apply(&cur).unwrap();
        assert_eq!(out.get("tags"), Some(&Value::from(vec!["b"])));
        // Push onto missing creates the array; onto scalar errors.
        let out = UpdateSpec::Ops(vec![UpdateOp::Push("new".into(), 1i64.into())]).apply(&cur).unwrap();
        assert_eq!(out.get("new"), Some(&Value::from(vec![1i64])));
        let bad = UpdateSpec::Ops(vec![UpdateOp::Push("tags.0".into(), 1i64.into())]);
        assert!(bad.apply(&cur).is_err());
    }

    #[test]
    fn rename() {
        let cur = doc! { "a" => 1i64 };
        let out = UpdateSpec::Ops(vec![UpdateOp::Rename("a".into(), "b".into())]).apply(&cur).unwrap();
        assert_eq!(out.get("a"), None);
        assert_eq!(out.get("b"), Some(&Value::Int(1)));
        // Renaming a missing field is a no-op.
        let out = UpdateSpec::Ops(vec![UpdateOp::Rename("zz".into(), "b".into())]).apply(&cur).unwrap();
        assert_eq!(out, cur);
    }

    #[test]
    fn bad_updates_rejected() {
        let cur = doc! { "s" => "text" };
        assert!(UpdateSpec::Ops(vec![UpdateOp::Inc("s".into(), Value::Int(1))]).apply(&cur).is_err());
        assert!(UpdateSpec::Ops(vec![UpdateOp::Inc("s".into(), Value::String("x".into()))])
            .apply(&cur)
            .is_err());
        assert!(UpdateSpec::from_document(&doc! { "$explode" => doc! { "a" => 1i64 } }).is_err());
        assert!(UpdateSpec::from_document(&doc! { "$set" => 5i64 }).is_err());
        assert!(UpdateSpec::from_document(&doc! { "$rename" => doc! { "a" => 5i64 } }).is_err());
    }
}
