//! Write-ahead persistence for the store.
//!
//! The paper's primary store (MongoDB) is durable; the embedded substrate
//! offers the same property through a write-ahead log: every committed
//! write is appended to a JSON-lines file by a background appender thread
//! (group-commit style, like journaling intervals in document stores), and
//! [`Store::open`] replays the log to reconstruct collections **with their
//! exact versions** — version continuity across restarts is what keeps the
//! staleness-avoidance scheme (§5.1) sound after recovery.
//!
//! A torn final line (crash mid-append) is tolerated and ignored on
//! recovery. [`Store::checkpoint`] compacts the log to a snapshot of the
//! live state. Tombstone versions are persisted so re-inserted keys keep
//! monotonically increasing versions even across restarts (checkpointing
//! preserves them too).

use crate::oplog::{OplogCursor, OplogEntry, OplogOp};
use crate::record::StoreError;
use crate::store::Store;
use invalidb_common::{doc, Document, Key, Value};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write as IoWrite};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the appender flushes buffered entries to the file.
const FLUSH_INTERVAL: Duration = Duration::from_millis(20);

pub(crate) struct WalHandle {
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    pub(crate) path: PathBuf,
    /// Shared with the appender thread so [`Store::checkpoint`] can swap in
    /// a handle to the *new* log file after the rename — otherwise the
    /// appender would keep writing to the unlinked old inode and every
    /// post-checkpoint write would vanish on restart.
    pub(crate) writer: Arc<Mutex<BufWriter<File>>>,
}

impl Drop for WalHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// Encodes one oplog entry as a WAL line.
fn encode_entry(entry: &OplogEntry) -> String {
    let mut d = Document::with_capacity(6);
    d.insert(
        "op",
        match entry.op {
            OplogOp::Insert => "i",
            OplogOp::Update => "u",
            OplogOp::Delete => "d",
        },
    );
    d.insert("c", entry.collection.clone());
    d.insert("k", entry.key.0.clone());
    d.insert("v", entry.version as i64);
    match &entry.doc {
        Some(doc) => d.insert("d", doc.clone()),
        None => d.insert("d", Value::Null),
    };
    invalidb_json::to_string(&d)
}

struct DecodedEntry {
    collection: String,
    key: Key,
    version: u64,
    doc: Option<Document>,
}

fn decode_line(line: &str) -> Option<DecodedEntry> {
    let d = invalidb_json::parse_document(line).ok()?;
    let collection = d.get("c")?.as_str()?.to_owned();
    let key = Key(d.get("k")?.clone());
    let version = d.get("v")?.as_i64()? as u64;
    let doc = match d.get("d")? {
        Value::Null => None,
        Value::Object(doc) => Some(doc.clone()),
        _ => return None,
    };
    Some(DecodedEntry { collection, key, version, doc })
}

impl Store {
    /// Opens (or creates) a durable store backed by a write-ahead log at
    /// `path`. Existing log contents are replayed — records come back with
    /// their exact versions, and tombstone versions survive so the version
    /// sequence of every key remains monotonic across restarts.
    pub fn open(path: impl AsRef<Path>) -> Result<Store, StoreError> {
        let path = path.as_ref().to_path_buf();
        let store = Store::new();
        // 1. Replay.
        if path.exists() {
            let file = File::open(&path).map_err(io_err)?;
            for line in BufReader::new(file).lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break, // torn tail
                };
                if line.trim().is_empty() {
                    continue;
                }
                match decode_line(&line) {
                    Some(e) => {
                        let collection = store.collection(&e.collection);
                        match e.doc {
                            Some(doc) => collection.restore(e.key, e.version, doc),
                            None => collection.restore_delete(e.key, e.version),
                        }
                    }
                    None => break, // torn/corrupt tail: ignore the rest
                }
            }
        }
        // Recovery replayed into collections directly (not through the write
        // path), so the in-memory oplog starts empty; the appender must only
        // persist entries from here on.
        // 2. Attach the appender.
        let file = OpenOptions::new().create(true).append(true).open(&path).map_err(io_err)?;
        let writer = Arc::new(Mutex::new(BufWriter::new(file)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut cursor = OplogCursor::new(store.oplog(), store.oplog().head());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let writer = Arc::clone(&writer);
            std::thread::Builder::new()
                .name("invalidb-store-wal".into())
                .spawn(move || {
                    loop {
                        let entries = cursor.poll_wait(FLUSH_INTERVAL);
                        if !entries.is_empty() {
                            let mut out = writer.lock();
                            for entry in &entries {
                                let _ = writeln!(out, "{}", encode_entry(entry));
                            }
                            let _ = out.flush();
                        }
                        if shutdown.load(Ordering::SeqCst) {
                            // Drain anything committed after the last poll.
                            let mut out = writer.lock();
                            for entry in cursor.poll() {
                                let _ = writeln!(out, "{}", encode_entry(&entry));
                            }
                            let _ = out.flush();
                            return;
                        }
                    }
                })
                .map_err(|e| StoreError::Io(e.to_string()))?
        };
        store.attach_wal(WalHandle { shutdown, thread: Some(thread), path, writer });
        Ok(store)
    }

    /// Compacts the write-ahead log to a snapshot of the current live state
    /// (plus tombstone markers), atomically replacing the log file. The
    /// appender's file handle is swapped to the new log under a lock, so
    /// writes committed during or after the checkpoint land in the new file
    /// (a write racing the snapshot may appear in both snapshot and tail;
    /// replay is idempotent per version, so that is harmless).
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let (path, writer) = match self.wal_writer() {
            Some(w) => w,
            None => return Err(StoreError::Io("store has no write-ahead log attached".into())),
        };
        // Hold the appender lock across snapshot + rename + swap: nothing
        // may be appended to the old inode after the snapshot is cut.
        let mut out_guard = writer.lock();
        let _ = out_guard.flush();
        let tmp = path.with_extension("compact");
        {
            let mut out = BufWriter::new(File::create(&tmp).map_err(io_err)?);
            for name in self.collection_names() {
                let collection = self.collection(&name);
                for (key, version, doc) in collection.scan_all() {
                    let mut d = Document::with_capacity(5);
                    d.insert("op", "i");
                    d.insert("c", name.clone());
                    d.insert("k", key.0);
                    d.insert("v", version as i64);
                    d.insert("d", doc);
                    writeln!(out, "{}", invalidb_json::to_string(&d)).map_err(io_err)?;
                }
                for (key, version) in collection.tombstone_snapshot() {
                    writeln!(
                        out,
                        "{}",
                        invalidb_json::to_string(&doc! {
                            "op" => "d", "c" => name.clone(), "k" => key.0,
                            "v" => version as i64, "d" => Value::Null,
                        })
                    )
                    .map_err(io_err)?;
                }
            }
            out.flush().map_err(io_err)?;
        }
        std::fs::rename(&tmp, &path).map_err(io_err)?;
        // Point the appender at the new file.
        let file = OpenOptions::new().append(true).open(&path).map_err(io_err)?;
        *out_guard = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::QuerySpec;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("invalidb-wal-{name}-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn settle() {
        std::thread::sleep(Duration::from_millis(80));
    }

    #[test]
    fn reopen_restores_contents_and_versions() {
        let path = tmp_path("reopen");
        {
            let store = Store::open(&path).unwrap();
            store.insert("t", Key::of("a"), doc! { "n" => 1i64 }).unwrap();
            store.save("t", Key::of("a"), doc! { "n" => 2i64 }).unwrap();
            store.insert("t", Key::of("b"), doc! { "n" => 9i64 }).unwrap();
            store.insert("u", Key::of(7i64), doc! { "x" => true }).unwrap();
            settle();
        }
        let store = Store::open(&path).unwrap();
        let (version, doc) = store.collection("t").get(&Key::of("a")).unwrap();
        assert_eq!(version, 2, "exact version restored");
        assert_eq!(doc.get("n"), Some(&Value::Int(2)));
        assert_eq!(store.collection("t").len(), 2);
        assert_eq!(store.collection("u").len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tombstone_versions_survive_restart() {
        let path = tmp_path("tombstone");
        {
            let store = Store::open(&path).unwrap();
            store.insert("t", Key::of("a"), doc! {}).unwrap(); // v1
            store.delete("t", Key::of("a")).unwrap(); // tombstone v2
            settle();
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.collection("t").len(), 0);
        // Re-insert must continue the version sequence (staleness avoidance
        // across restarts, §5.1).
        let w = store.insert("t", Key::of("a"), doc! {}).unwrap();
        assert_eq!(w.version, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp_path("torn");
        {
            let store = Store::open(&path).unwrap();
            store.insert("t", Key::of(1i64), doc! { "n" => 1i64 }).unwrap();
            store.insert("t", Key::of(2i64), doc! { "n" => 2i64 }).unwrap();
            settle();
        }
        // Simulate a crash mid-append: truncate the last line in half.
        let content = std::fs::read_to_string(&path).unwrap();
        let cut = content.len() - 10;
        std::fs::write(&path, &content[..cut]).unwrap();
        let store = Store::open(&path).unwrap();
        assert_eq!(store.collection("t").len(), 1, "torn record dropped, prefix recovered");
        assert!(store.collection("t").get(&Key::of(1i64)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_compacts_and_preserves_state() {
        let path = tmp_path("checkpoint");
        {
            let store = Store::open(&path).unwrap();
            for i in 0..20i64 {
                store.insert("t", Key::of(i), doc! { "n" => 0i64 }).unwrap();
            }
            // 10 updates per key: 220 log lines before compaction.
            for round in 1..=10i64 {
                for i in 0..20i64 {
                    store.save("t", Key::of(i), doc! { "n" => round }).unwrap();
                }
            }
            store.delete("t", Key::of(0i64)).unwrap();
            settle();
            let before = std::fs::metadata(&path).unwrap().len();
            store.checkpoint().unwrap();
            settle();
            let after = std::fs::metadata(&path).unwrap().len();
            assert!(after < before / 3, "log shrank: {before} -> {after}");
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.collection("t").len(), 19);
        let (version, doc) = store.collection("t").get(&Key::of(5i64)).unwrap();
        assert_eq!(version, 11);
        assert_eq!(doc.get("n"), Some(&Value::Int(10)));
        // Tombstone of the deleted key survived compaction.
        let w = store.insert("t", Key::of(0i64), doc! {}).unwrap();
        assert_eq!(w.version, 13);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn durable_store_serves_queries_like_a_fresh_one() {
        let path = tmp_path("query");
        {
            let store = Store::open(&path).unwrap();
            for i in 0..50i64 {
                store.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
            }
            settle();
        }
        let store = Store::open(&path).unwrap();
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 40i64 } });
        assert_eq!(store.execute(&spec).unwrap().len(), 10);
        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(test)]
mod post_checkpoint_tests {
    use super::*;
    use invalidb_common::{doc, Key};

    /// Regression: writes committed *after* a checkpoint must land in the
    /// new log file (the appender's handle is swapped), not the unlinked
    /// old inode.
    #[test]
    fn writes_after_checkpoint_survive_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!("invalidb-wal-postck-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let store = Store::open(&path).unwrap();
            store.insert("t", Key::of("before"), doc! { "n" => 1i64 }).unwrap();
            std::thread::sleep(Duration::from_millis(80));
            store.checkpoint().unwrap();
            // These were lost before the handle-swap fix.
            store.insert("t", Key::of("after1"), doc! { "n" => 2i64 }).unwrap();
            store.insert("t", Key::of("after2"), doc! { "n" => 3i64 }).unwrap();
            std::thread::sleep(Duration::from_millis(80));
        }
        let store = Store::open(&path).unwrap();
        assert_eq!(store.collection("t").len(), 3, "post-checkpoint writes recovered");
        assert!(store.collection("t").get(&Key::of("after2")).is_some());
        let _ = std::fs::remove_file(&path);
    }
}
