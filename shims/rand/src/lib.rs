//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses: `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! across platforms, which is all the callers (seeded chaos, seeded
//! workloads, property tests) rely on. Statistical quality matches the
//! real crate for every use in this repository; cryptographic strength is
//! explicitly out of scope.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard generator (xoshiro256++ here; the real crate uses
    /// ChaCha12 — callers only depend on determinism given a seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of the
/// real crate).
pub trait Standard: Sized {
    /// Samples a value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-20..20i64);
            assert!((-20..20).contains(&v));
            let u = rng.gen_range(0..=5u64);
            assert!(u <= 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
