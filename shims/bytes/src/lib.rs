//! Offline stand-in for the `bytes` crate.
//!
//! The workspace vendors the exact subset it uses so builds never touch a
//! registry: an immutable, cheaply cloneable byte buffer. Slicing windows,
//! `BytesMut`, and the `Buf`/`BufMut` traits are intentionally absent —
//! nothing in this repository needs them.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Creates a buffer from a static slice (copied; the real crate borrows,
    /// but no caller here observes the difference).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a slice.
    #[allow(clippy::should_implement_trait)] // mirrors the real `bytes` call sites
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, Bytes::from(b"hello".to_vec()));
        assert_eq!(b.to_vec(), b"hello".to_vec());
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn empty() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(b, Bytes::default());
    }
}
