//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards come back directly from `lock()`, a poisoned lock just yields the
//! inner data). Fairness and inline-atomic optimizations of the real crate
//! are irrelevant to correctness here.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// Non-blocking Debug impls for the lock types.
macro_rules! fmt_debug_opaque {
    ($name:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, concat!($name, " {{ .. }}"))
        }
    };
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual exclusion primitive (non-poisoning API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard for waiting.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::Mutex::new(t) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fmt_debug_opaque!("Mutex");
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock (non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::RwLock::new(t) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fmt_debug_opaque!("RwLock");
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }
}
