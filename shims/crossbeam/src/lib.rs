//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel`'s MPMC channels — the only part of the
//! crate this workspace uses — implemented on a `Mutex<VecDeque>` with two
//! condition variables. Semantics mirror the real crate where observed:
//!
//! * both `Sender` and `Receiver` are `Clone + Send + Sync`;
//! * `send` on a bounded channel blocks while full, and fails only when all
//!   receivers are gone;
//! * `recv` drains remaining messages even after all senders disconnect and
//!   fails only once the queue is empty *and* no sender remains.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is pushed or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when a message is popped or all receivers disconnect.
        not_full: Condvar,
        capacity: Option<usize>,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while `cap` messages
    /// are queued. `cap == 0` is treated as capacity 1 (the real crate's
    /// rendezvous channel is not used anywhere in this workspace).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    // -----------------------------------------------------------------
    // Errors
    // -----------------------------------------------------------------

    /// The message could not be sent because all receivers disconnected.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }
    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl<T> std::error::Error for SendError<T> {}

    /// Errors for [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// The channel is empty and all senders disconnected.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Errors for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Errors for [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    // -----------------------------------------------------------------
    // Sender
    // -----------------------------------------------------------------

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.chan.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.chan.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails if full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.chan.capacity {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    // -----------------------------------------------------------------
    // Receiver
    // -----------------------------------------------------------------

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.chan.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.lock();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Iterator draining currently available messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            drop(tx);
            // Remaining messages drain before the disconnect error.
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            let t = std::thread::spawn(move || tx.send(3));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn mpmc_counts() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            let handles: Vec<_> = [(tx, 100), (tx2, 100)]
                .into_iter()
                .map(|(tx, n)| {
                    std::thread::spawn(move || {
                        for i in 0..n {
                            tx.send(i).unwrap();
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = [rx, rx2]
                .into_iter()
                .map(|rx| {
                    std::thread::spawn(move || {
                        let mut got = 0;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 200);
        }
    }
}
