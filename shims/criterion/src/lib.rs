//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the API subset this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with throughput
//! annotations, and `black_box`. No statistical regression analysis or
//! HTML reports — it times iterations and prints mean/median per benchmark,
//! which is what EXPERIMENTS.md records.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for measurement.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(self, id, None, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), throughput: None }
    }

    /// Final summary hook (no-op; kept for API parity).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &full, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: run for the configured duration while estimating cost/iter.
    let mut per_iter = {
        let warm_start = Instant::now();
        let mut iters = 0u64;
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warm_start.elapsed() < c.warm_up_time {
            f(&mut b);
            iters += b.iters;
            b.iters = (b.iters * 2).min(1 << 20);
        }
        let elapsed = warm_start.elapsed();
        (elapsed.as_nanos() as f64 / iters.max(1) as f64).max(0.5)
    };

    // Measurement: `sample_size` samples splitting the time budget.
    let mut samples_ns: Vec<f64> = Vec::with_capacity(c.sample_size);
    let budget_per_sample = c.measurement_time.as_nanos() as f64 / c.sample_size as f64;
    for _ in 0..c.sample_size {
        let iters = ((budget_per_sample / per_iter).ceil() as u64).clamp(1, 1 << 24);
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / iters as f64;
        per_iter = ns.max(0.5);
        samples_ns.push(ns);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let median = samples_ns[samples_ns.len() / 2];
    let _mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", human(n as f64 * 1e9 / median)),
        Throughput::Bytes(n) => format!("  {:>10}B/s", human(n as f64 * 1e9 / median)),
    });
    println!(
        "{:<55} time: [{} {} {}]{}",
        id,
        fmt_ns(samples_ns[0]),
        fmt_ns(median),
        fmt_ns(*samples_ns.last().expect("samples")),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a group of benchmark functions with an optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.finish();
        c.bench_function("mul", |b| b.iter(|| black_box(3u64) * black_box(4)));
    }
}
