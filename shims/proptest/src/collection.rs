//! Collection strategies: `prop::collection::{vec, btree_map}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Size bounds for generated collections (half-open on construction from a
/// `Range`, mirroring the real crate).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng().gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi_inclusive: n }
    }
}

/// A strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy for `BTreeMap<K, V>` with sizes drawn from `size`. Key
/// collisions overwrite, so maps may come out smaller than requested when
/// the key space is narrow — matching the real crate's behaviour closely
/// enough for the tests using it.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size: size.into() }
}

/// Strategy returned by [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Bounded attempts: a narrow key space may not admit `target`
        // distinct keys at all.
        for _ in 0..target.saturating_mul(10).max(8) {
            if map.len() >= target {
                break;
            }
            map.insert(self.keys.new_value(rng), self.values.new_value(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::for_test("vec_sizes", 1);
        let s = vec(0..100i64, 2..5);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn btree_map_respects_bounds() {
        let mut rng = TestRng::for_test("btree", 1);
        let s = btree_map(0..20i64, 0..50i64, 0..15);
        for _ in 0..50 {
            let m = s.new_value(&mut rng);
            assert!(m.len() < 15);
            for (k, v) in &m {
                assert!((0..20).contains(k));
                assert!((0..50).contains(v));
            }
        }
    }
}
