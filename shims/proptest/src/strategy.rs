//! Generation strategies: the core trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::sync::Arc;

/// A recipe for generating values of a given type.
///
/// Simplified from the real crate: a strategy produces values directly
/// (there is no `ValueTree` / shrinking layer).
pub trait Strategy {
    /// The type of generated values. `Debug` so failing cases can report
    /// their inputs.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying. Panics if the
    /// predicate rejects too consistently (mirrors the real crate giving up).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Lifts this leaf strategy into a recursive one: `f` receives a
    /// strategy for "values built so far" and wraps it one level deeper.
    /// `depth` bounds nesting; the size hints are accepted for API parity.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            // Each level may generate from any shallower level, so
            // containers nest to mixed depths like in the real crate.
            let inner = OneOf::new(levels.clone()).boxed();
            levels.push(f(inner).boxed());
        }
        Recursive { levels }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

// ---------------------------------------------------------------------------
// Type-erased strategies
// ---------------------------------------------------------------------------

trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

/// Uniform (or weighted) choice among strategies of one value type.
/// Produced by [`prop_oneof!`](crate::prop_oneof).
#[derive(Clone)]
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> OneOf<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Self { arms, total_weight }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.new_value(rng);
            }
            pick -= *weight as u64;
        }
        self.arms.last().expect("non-empty").1.new_value(rng)
    }
}

/// Result of [`Strategy::prop_recursive`].
#[derive(Clone)]
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for Recursive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let level = rng.rng().gen_range(0..self.levels.len());
        self.levels[level].new_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 candidates in a row", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges and tuples as strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

/// Regex-subset string strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.new_value(rng), )+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_map() {
        let mut rng = TestRng::for_test("ranges", 1);
        let s = ((0..10i64), (5..6u32)).prop_map(|(a, b)| a + b as i64);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof", 1);
        let s = OneOf::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::for_test("filter", 1);
        let s = (0..100i64).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn recursive_nests_and_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // fields only inspected via Debug
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let mut rng = TestRng::for_test("recursive", 1);
        let s = (0..10i64)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| crate::collection::vec(inner, 0..4).prop_map(Tree::Node));
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(s.new_value(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }
}
