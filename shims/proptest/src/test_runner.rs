//! Test-runner types: configuration, failure reporting, and the
//! deterministic RNG driving generation.

use rand::{RngCore, SeedableRng, StdRng};
use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API parity; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A default configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG used for generation.
///
/// The seed derives from the test name (so distinct tests explore distinct
/// sequences) unless `PROPTEST_SEED` overrides it for reproduction.
pub struct TestRng {
    rng: StdRng,
    seed: u64,
}

impl TestRng {
    /// The RNG for one named test.
    pub fn for_test(name: &str, cases: u32) -> Self {
        let seed = match std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()) {
            Some(seed) => seed,
            None => fnv1a(name.as_bytes()) ^ (cases as u64).rotate_left(17),
        };
        Self { rng: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed in use (reported on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Next 64 random bits (convenience passthrough).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}
