//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generates one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix uniform bits with boundary values and small numbers:
                // uniform alone virtually never exercises edges or the
                // "small integers" most code paths branch on.
                match rng.next_u64() % 8 {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 | 4 => (rng.next_u64() % 32) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 16 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => f64::MIN_POSITIVE,
            6 => f64::EPSILON,
            // Small "friendly" magnitudes.
            7..=9 => (rng.next_u64() % 2_000) as f64 / 8.0 - 100.0,
            // Arbitrary finite bit patterns (NaN payloads collapse to NAN
            // above; exclude them here so the mix stays balanced).
            _ => {
                let v = f64::from_bits(rng.next_u64());
                if v.is_nan() {
                    1.5e300
                } else {
                    v
                }
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::any_non_control_char(rng.rng())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_hits_extremes_and_smalls() {
        let mut rng = TestRng::for_test("arb_i64", 1);
        let mut saw_min = false;
        let mut saw_max = false;
        let mut saw_small = false;
        for _ in 0..500 {
            match i64::arbitrary(&mut rng) {
                i64::MIN => saw_min = true,
                i64::MAX => saw_max = true,
                v if (0..32).contains(&v) => saw_small = true,
                _ => {}
            }
        }
        assert!(saw_min && saw_max && saw_small);
    }

    #[test]
    fn f64_hits_specials() {
        let mut rng = TestRng::for_test("arb_f64", 1);
        let mut saw_nan = false;
        let mut saw_inf = false;
        for _ in 0..500 {
            let v = f64::arbitrary(&mut rng);
            saw_nan |= v.is_nan();
            saw_inf |= v.is_infinite();
        }
        assert!(saw_nan && saw_inf);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<i64> = {
            let mut rng = TestRng::for_test("det", 1);
            (0..10).map(|_| i64::arbitrary(&mut rng)).collect()
        };
        let b: Vec<i64> = {
            let mut rng = TestRng::for_test("det", 1);
            (0..10).map(|_| i64::arbitrary(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
