//! String generation from a regex subset.
//!
//! Supports what this workspace's strategies use: literal characters,
//! character classes (`[a-zA-Z0-9_.$-]`, negation, literal control chars,
//! embedded escapes), the escapes `\PC`/`\pC` (non-control / control
//! character), `\d`, `\w`, `\s`, `\\` and friends, quantifiers `{m}`,
//! `{m,n}`, `?`, `*`, `+`, groups, and alternation. Unsupported syntax
//! panics with the offending pattern, so a typo fails loudly instead of
//! generating garbage.

use crate::test_runner::TestRng;
use rand::{Rng, StdRng};

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let ast = Parser { chars: pattern.chars().collect(), pos: 0, pattern }.parse_alternation();
    let mut out = String::new();
    emit(&ast, rng.rng(), &mut out);
    out
}

/// A char that is not a Unicode control/format character — the generation
/// side of `\PC`. Mostly printable ASCII, with occasional BMP and astral
/// characters so UTF-8 handling gets exercised.
pub fn any_non_control_char(rng: &mut StdRng) -> char {
    loop {
        let c = match rng.gen_range(0..10u32) {
            0..=6 => rng.gen_range(0x20u32..0x7f),
            7 | 8 => rng.gen_range(0xA0u32..0xD800),
            _ => rng.gen_range(0x1_0000u32..0x1_1000),
        };
        if let Some(c) = char::from_u32(c) {
            if !is_control(c) {
                return c;
            }
        }
    }
}

fn is_control(c: char) -> bool {
    // Approximates Unicode category C (Cc + the format chars a JSON/string
    // codec could plausibly mangle).
    c.is_control() || ('\u{200b}'..='\u{200f}').contains(&c) || ('\u{2028}'..='\u{202e}').contains(&c)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// One alternative among several.
    Alt(Vec<Node>),
    /// A repeated node with inclusive count bounds.
    Repeat(Box<Node>, u32, u32),
    /// A single literal char.
    Literal(char),
    /// A character class.
    Class(Class),
}

struct Class {
    negated: bool,
    /// Inclusive char ranges (single chars become degenerate ranges).
    ranges: Vec<(char, char)>,
    /// Whether `\PC` (any non-control) is a member.
    any_non_control: bool,
    /// Whether `\pC` (control chars) is a member.
    control: bool,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex strategy {:?}: {} at offset {}", self.pattern, what, self.pos);
    }

    fn parse_alternation(&mut self) -> Node {
        let mut alts = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_seq());
        }
        if alts.len() == 1 {
            alts.pop().expect("one alt")
        } else {
            Node::Alt(alts)
        }
    }

    fn parse_seq(&mut self) -> Node {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            parts.push(self.parse_quantifier(atom));
        }
        Node::Seq(parts)
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            Some('(') => {
                let inner = self.parse_alternation();
                if self.bump() != Some(')') {
                    self.fail("unclosed group");
                }
                inner
            }
            Some('[') => Node::Class(self.parse_class()),
            Some('\\') => self.parse_escape_atom(),
            Some('.') => Node::Class(Class {
                negated: false,
                ranges: Vec::new(),
                any_non_control: true,
                control: false,
            }),
            Some('^') | Some('$') => Node::Seq(Vec::new()), // anchors generate nothing
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end"),
        }
    }

    fn parse_escape_atom(&mut self) -> Node {
        match self.bump() {
            Some('P') | Some('p') => {
                // `\PC` / `\pC`: only category C is supported.
                let negated = self.chars[self.pos - 1] == 'P';
                match self.bump() {
                    Some('C') => Node::Class(Class {
                        negated: false,
                        ranges: Vec::new(),
                        any_non_control: negated,
                        control: !negated,
                    }),
                    _ => self.fail("only category C is supported after \\P/\\p"),
                }
            }
            Some('d') => Node::Class(class_of_ranges(&[('0', '9')])),
            Some('w') => Node::Class(class_of_ranges(&[('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')])),
            Some('s') => Node::Class(class_of_ranges(&[(' ', ' '), ('\t', '\t'), ('\n', '\n')])),
            Some('n') => Node::Literal('\n'),
            Some('t') => Node::Literal('\t'),
            Some('r') => Node::Literal('\r'),
            Some(
                c @ ('\\' | '.' | '[' | ']' | '(' | ')' | '{' | '}' | '|' | '?' | '*' | '+' | '-' | '^'
                | '$' | '"' | '/'),
            ) => Node::Literal(c),
            _ => self.fail("unsupported escape"),
        }
    }

    fn parse_class(&mut self) -> Class {
        let mut class =
            Class { negated: false, ranges: Vec::new(), any_non_control: false, control: false };
        if self.peek() == Some('^') {
            self.bump();
            class.negated = true;
        }
        loop {
            let c = match self.bump() {
                None => self.fail("unclosed class"),
                Some(']') => break,
                Some('\\') => match self.bump() {
                    Some('P') => match self.bump() {
                        Some('C') => {
                            class.any_non_control = true;
                            continue;
                        }
                        _ => self.fail("only \\PC is supported in classes"),
                    },
                    Some('p') => match self.bump() {
                        Some('C') => {
                            class.control = true;
                            continue;
                        }
                        _ => self.fail("only \\pC is supported in classes"),
                    },
                    Some('d') => {
                        class.ranges.push(('0', '9'));
                        continue;
                    }
                    Some('w') => {
                        class.ranges.extend([('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]);
                        continue;
                    }
                    Some('s') => {
                        class.ranges.extend([(' ', ' '), ('\t', '\t'), ('\n', '\n')]);
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(c) => c, // \\, \-, \], \^, …
                    None => self.fail("dangling escape in class"),
                },
                Some(c) => c,
            };
            // Range `a-b` unless `-` is the last char before `]`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1).copied() != Some(']') {
                self.bump(); // `-`
                let hi = match self.bump() {
                    Some('\\') => match self.bump() {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some(c) => c,
                        None => self.fail("dangling escape in class range"),
                    },
                    Some(hi) => hi,
                    None => self.fail("unclosed class range"),
                };
                if c > hi {
                    self.fail("descending class range");
                }
                class.ranges.push((c, hi));
            } else {
                class.ranges.push((c, c));
            }
        }
        if class.ranges.is_empty() && !class.any_non_control && !class.control {
            self.fail("empty class");
        }
        class
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 6)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(atom), 1, 7)
            }
            Some('{') => {
                self.bump();
                let lo = self.parse_number();
                let hi = match self.peek() {
                    Some(',') => {
                        self.bump();
                        self.parse_number()
                    }
                    _ => lo,
                };
                if self.bump() != Some('}') {
                    self.fail("unclosed quantifier");
                }
                if hi < lo {
                    self.fail("descending quantifier");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            self.fail("expected number");
        }
        self.chars[start..self.pos].iter().collect::<String>().parse().expect("digits")
    }
}

fn class_of_ranges(ranges: &[(char, char)]) -> Class {
    Class { negated: false, ranges: ranges.to_vec(), any_non_control: false, control: false }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Seq(parts) => {
            for p in parts {
                emit(p, rng, out);
            }
        }
        Node::Alt(alts) => {
            let pick = rng.gen_range(0..alts.len());
            emit(&alts[pick], rng, out);
        }
        Node::Repeat(inner, lo, hi) => {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::Class(class) => out.push(sample_class(class, rng)),
    }
}

fn sample_class(class: &Class, rng: &mut StdRng) -> char {
    if class.negated {
        // Rejection-sample from the non-control space.
        for _ in 0..1_000 {
            let c = any_non_control_char(rng);
            if !class_contains(class, c) {
                return c;
            }
        }
        panic!("negated class rejected 1000 candidates in a row");
    }
    // Membership choices: each explicit range counts once; the special sets
    // count once each.
    let specials = class.any_non_control as usize + class.control as usize;
    let pick = rng.gen_range(0..class.ranges.len() + specials);
    if pick < class.ranges.len() {
        let (lo, hi) = class.ranges[pick];
        loop {
            // Some ranges cross the surrogate gap (e.g. `[\u{0}-\u{10FFFF}]`);
            // resample instead of panicking.
            if let Some(c) = char::from_u32(rng.gen_range(lo as u32..=hi as u32)) {
                return c;
            }
        }
    }
    let want_control = class.control
        && (pick == class.ranges.len() + class.any_non_control as usize || !class.any_non_control);
    if want_control {
        char::from_u32(rng.gen_range(0x00u32..0x20)).expect("ascii control")
    } else {
        any_non_control_char(rng)
    }
}

fn class_contains(class: &Class, c: char) -> bool {
    class.ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&c))
        || (class.any_non_control && !is_control(c))
        || (class.control && is_control(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::for_test(pattern, 1);
        (0..n).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn simple_class_with_count() {
        for s in gen("[a-d]{0,3}", 200) {
            assert!(s.len() <= 3);
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn mixed_class() {
        for s in gen("[a-zA-Z0-9_.$-]{1,8}", 200) {
            assert!((1..=8).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || "_.$-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn non_control_escape() {
        let mut seen_non_ascii = false;
        for s in gen("\\PC{0,64}", 300) {
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            seen_non_ascii |= !s.is_ascii();
        }
        assert!(seen_non_ascii, "should exercise multi-byte UTF-8");
    }

    #[test]
    fn class_with_pc_and_literal_control_range() {
        // The JSON tests embed literal U+0000–U+007F in a class with \PC.
        let pattern = "[\\PC\u{0}-\u{7f}]{0,16}";
        let mut seen_control = false;
        for s in gen(pattern, 500) {
            assert!(s.chars().count() <= 16);
            seen_control |= s.chars().any(|c| c.is_control());
        }
        assert!(seen_control, "the literal range includes control chars");
    }

    #[test]
    fn alternation_and_groups() {
        for s in gen("(foo|ba+r){1,2}", 100) {
            assert!(!s.is_empty());
            let re_ok = {
                let mut rest = s.as_str();
                let mut ok = true;
                while !rest.is_empty() {
                    if let Some(r) = rest.strip_prefix("foo") {
                        rest = r;
                    } else if rest.starts_with("ba") {
                        let r = &rest[2..];
                        let trimmed = r.trim_start_matches('a');
                        if let Some(r2) = trimmed.strip_prefix('r') {
                            rest = r2;
                        } else {
                            ok = false;
                            break;
                        }
                    } else {
                        ok = false;
                        break;
                    }
                }
                ok
            };
            assert!(re_ok, "{s:?}");
        }
    }

    #[test]
    fn negated_class() {
        for s in gen("[^a-z]{1,4}", 100) {
            assert!(s.chars().all(|c| !c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_syntax_fails_loudly() {
        gen("a\\z", 1);
    }
}
