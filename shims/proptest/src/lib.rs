//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the real crate that this workspace's property
//! tests use: composable generation strategies (`prop_map`, `prop_filter`,
//! `prop_recursive`, `prop_oneof!`, collections, tuples, ranges, regex-ish
//! string strategies), the `proptest!` test macro, and `prop_assert*`.
//!
//! Deliberate simplifications, safe for how the tests use the API:
//!
//! * **No shrinking.** A failing case reports its inputs (and the seed) but
//!   is not minimized. Failures stay reproducible because generation is
//!   deterministic: the seed derives from the test name, or from
//!   `PROPTEST_SEED` when set.
//! * **Regex strategies** support the subset appearing in this repository:
//!   literals, classes (`[a-z0-9_.$-]`, negation, embedded literal chars),
//!   escapes (`\PC`, `\d`, `\w`, `\s`, `\\`, …), quantifiers
//!   (`{m}`, `{m,n}`, `?`, `*`, `+`), groups, and alternation.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // The real prelude re-exports the crate root as `prop` so paths like
    // `prop::collection::vec` work unchanged.
    pub use crate as prop;
}

/// Chooses among strategies producing the same value type. Optional
/// `weight => strategy` arms bias the choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::weighted(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Property-test assertion; fails the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Declares property tests: each `fn` runs its body for many generated
/// inputs. Accepts an optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(stringify!($name), __config.cases);
            for __case in 0..__config.cases {
                // Strategies are rebuilt per case; construction is cheap and
                // it keeps the macro free of extra bindings.
                let __vals = ( $( $crate::strategy::Strategy::new_value(&($strat), &mut __rng) ,)+ );
                let __inputs = format!("{:?}", __vals);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let ( $($pat,)+ ) = __vals;
                    let __run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __run()
                }));
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}\n  seed: {}",
                            __case + 1,
                            __config.cases,
                            e,
                            __inputs,
                            __rng.seed(),
                        );
                    }
                    ::std::result::Result::Err(panic_payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked\n  inputs: {}\n  seed: {}",
                            __case + 1,
                            __config.cases,
                            __inputs,
                            __rng.seed(),
                        );
                        ::std::panic::resume_unwind(panic_payload);
                    }
                }
            }
        }
    )*};
}
