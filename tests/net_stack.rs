//! Full-stack integration over real TCP: store + cluster behind a
//! `BrokerServer`, app server connected through a `RemoteBroker` — with a
//! chaos proxy in the middle.
//!
//! The contract being tested mirrors the paper's deployment model: the
//! event layer is best-effort (Redis pub/sub semantics, §5.3), and the
//! layers above it — write-stream retention (§5.1), maintenance errors +
//! renewal (§5.2), heartbeat supervision — turn that into bounded
//! staleness and eventual convergence.

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent, Subscription};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::net::{
    BrokerServer, BrokerServerConfig, ChaosProxy, ChaosProxyConfig, RemoteBroker, RemoteBrokerConfig,
};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec, SortDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One "cluster host": store, cluster, and the event layer served on TCP.
struct ClusterHost {
    store: Arc<Store>,
    _cluster: invalidb::core::Cluster,
    server: BrokerServer,
}

fn cluster_host() -> ClusterHost {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let server = BrokerServer::bind("127.0.0.1:0", broker, BrokerServerConfig::default())
        .expect("bind event-layer server");
    ClusterHost { store, _cluster: cluster, server }
}

fn remote(addr: &str) -> RemoteBroker {
    let client = RemoteBroker::connect(
        addr.to_string(),
        RemoteBrokerConfig { client_name: "net-stack-test".into(), ..Default::default() },
    );
    assert!(client.wait_connected(Duration::from_secs(5)), "event layer reachable");
    client
}

/// Drains pending events and compares each live result against the
/// store's pull truth. Returns the divergences (empty = converged).
fn divergences(store: &Store, subs: &mut [(Subscription, QuerySpec)]) -> Vec<String> {
    for (sub, _) in subs.iter_mut() {
        while sub.events().non_blocking().next().is_some() {}
    }
    let mut out = Vec::new();
    for (sub, spec) in subs.iter_mut() {
        let mut truth: Vec<Key> = store.execute(spec).unwrap().into_iter().map(|r| r.key).collect();
        let mut live = sub.result().keys();
        if spec.sort.is_empty() {
            live.sort();
            truth.sort();
        }
        if live != truth {
            out.push(format!("{spec}: live {live:?} truth {truth:?}"));
        }
    }
    out
}

/// Polls [`divergences`] until every live result agrees with the pull
/// truth (or the deadline passes).
fn assert_converges(
    store: &Store,
    subs: &mut [(Subscription, QuerySpec)],
    deadline: Duration,
    context: &str,
) {
    let deadline = Instant::now() + deadline;
    loop {
        let diverged = divergences(store, subs);
        if diverged.is_empty() {
            return;
        }
        assert!(Instant::now() < deadline, "no convergence ({context}):\n{}", diverged.join("\n"));
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn random_write(app: &AppServer, rng: &mut StdRng) {
    let key = Key::of(rng.gen_range(0..30i64));
    match rng.gen_range(0..4) {
        0..=1 => {
            let _ = app.save("items", key, doc! { "n" => rng.gen_range(0..100i64) });
        }
        2 => {
            let _ = app.save("items", key, doc! { "n" => rng.gen_range(-50..0i64) });
        }
        _ => {
            let _ = app.delete("items", key);
        }
    }
}

/// Mixed-version interop: a peer without [`invalidb::net::CAP_BINARY`] on
/// one side of a binary-capable deployment. Every payload crossing the
/// incompatible hop is transcoded to JSON by the capable side, so the full
/// subscribe → write → notify loop must work under chaos with zero decode
/// errors anywhere.
fn mixed_version_roundtrip(client_binary: bool, server_binary: bool, seed: u64) {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let server = BrokerServer::bind(
        "127.0.0.1:0",
        broker,
        BrokerServerConfig { binary_payloads: server_binary, ..Default::default() },
    )
    .expect("bind event-layer server");
    let proxy = ChaosProxy::start(
        server.local_addr().to_string(),
        ChaosProxyConfig {
            seed,
            latency: Some((Duration::from_micros(100), Duration::from_millis(2))),
            ..ChaosProxyConfig::default()
        },
    )
    .expect("start chaos proxy");
    let link = RemoteBroker::connect(
        proxy.local_addr().to_string(),
        RemoteBrokerConfig {
            client_name: "mixed-version".into(),
            binary_payloads: client_binary,
            ..Default::default()
        },
    );
    assert!(link.wait_connected(Duration::from_secs(5)), "event layer reachable");
    let app = AppServer::start("mixed", Arc::clone(&store), link.clone(), AppServerConfig::default());

    let unsorted = QuerySpec::filter("items", doc! { "n" => doc! { "$gte" => 50i64 } });
    let sorted = QuerySpec::filter("items", doc! {}).sorted_by("n", SortDirection::Desc).with_limit(5);
    let mut subs = Vec::new();
    for spec in [&unsorted, &sorted] {
        let mut sub = app.subscribe(spec).unwrap();
        assert!(
            matches!(
                sub.events().timeout(Duration::from_secs(10)).next(),
                Some(ClientEvent::Initial(_))
            ),
            "initial result arrives despite the codec mismatch"
        );
        subs.push((sub, spec.clone()));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..150 {
        random_write(&app, &mut rng);
        if i % 30 == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert_converges(&store, &mut subs, Duration::from_secs(20), "mixed-version chaos");

    // The negotiation must have landed where the configs say.
    let expect_caps = if server_binary { invalidb::net::CAP_BINARY } else { 0 };
    assert_eq!(link.server_capabilities(), expect_caps, "server Hello reply");
    // And nothing anywhere failed to decode: the cluster saw only payloads
    // it could sniff, the client frames all parsed.
    assert_eq!(cluster.decode_errors(), 0, "cluster envelope decode errors");
    assert_eq!(link.metrics().decode_errors.load(Ordering::Relaxed), 0, "client frame errors");
    link.shutdown();
}

/// A JSON-only (legacy) client against a binary-capable server.
#[test]
fn json_only_client_interops_with_binary_server() {
    mixed_version_roundtrip(false, true, 21);
}

/// A binary-capable client against a JSON-only (legacy) server.
#[test]
fn binary_client_interops_with_json_only_server() {
    mixed_version_roundtrip(true, false, 23);
}

/// Subscribe → write → notify across TCP, through a proxy injecting
/// per-chunk latency. Latency alone must not cost a single notification.
#[test]
fn subscribe_write_notify_across_tcp_with_chaos() {
    let host = cluster_host();
    let proxy = ChaosProxy::start(
        host.server.local_addr().to_string(),
        ChaosProxyConfig {
            seed: 7,
            latency: Some((Duration::from_micros(100), Duration::from_millis(3))),
            ..ChaosProxyConfig::default()
        },
    )
    .expect("start chaos proxy");
    let link = remote(&proxy.local_addr().to_string());
    let app =
        AppServer::start("netstack", Arc::clone(&host.store), link.clone(), AppServerConfig::default());

    let unsorted = QuerySpec::filter("items", doc! { "n" => doc! { "$gte" => 50i64 } });
    let sorted = QuerySpec::filter("items", doc! {}).sorted_by("n", SortDirection::Desc).with_limit(5);
    let mut subs = Vec::new();
    for spec in [&unsorted, &sorted] {
        let mut sub = app.subscribe(spec).unwrap();
        assert!(
            matches!(
                sub.events().timeout(Duration::from_secs(10)).next(),
                Some(ClientEvent::Initial(_))
            ),
            "initial result arrives over TCP"
        );
        subs.push((sub, spec.clone()));
    }

    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..200 {
        random_write(&app, &mut rng);
        if i % 40 == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    assert_converges(&host.store, &mut subs, Duration::from_secs(20), "latency chaos");
    link.shutdown();
}

/// The acceptance scenario: a forced disconnect mid-stream, recovered by
/// the supervisor's reconnect + resubscription replay, converging to the
/// pull truth once the writes lost to the at-most-once gap are re-driven.
#[test]
fn forced_disconnect_recovers_via_replay() {
    let host = cluster_host();
    let proxy = ChaosProxy::start(
        host.server.local_addr().to_string(),
        ChaosProxyConfig {
            seed: 11,
            latency: Some((Duration::from_micros(50), Duration::from_millis(1))),
            ..ChaosProxyConfig::default()
        },
    )
    .expect("start chaos proxy");
    let link = remote(&proxy.local_addr().to_string());
    let app = AppServer::start(
        "netstack-dc",
        Arc::clone(&host.store),
        link.clone(),
        AppServerConfig::default(),
    );

    let spec = QuerySpec::filter("items", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(
        sub.events().timeout(Duration::from_secs(10)).next(),
        Some(ClientEvent::Initial(_))
    ));
    let mut subs = vec![(sub, spec)];

    let mut rng = StdRng::seed_from_u64(2020);
    for _ in 0..100 {
        random_write(&app, &mut rng);
    }

    // Kill the TCP connection out from under the app server, mid-stream,
    // and keep writing into the gap. Envelopes published while the link
    // is down are lost — at-most-once, exactly like Redis pub/sub.
    let reconnects_before = link.metrics().reconnects.load(Ordering::Relaxed);
    link.kick();
    proxy.reset_all();
    for _ in 0..50 {
        random_write(&app, &mut rng);
    }

    // The supervisor reconnects and replays its SUBSCRIBEs; notifications
    // flow again without the app server doing anything.
    let deadline = Instant::now() + Duration::from_secs(10);
    while link.metrics().reconnects.load(Ordering::Relaxed) <= reconnects_before {
        assert!(Instant::now() < deadline, "supervisor should reconnect");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(link.wait_connected(Duration::from_secs(10)));

    for _ in 0..100 {
        random_write(&app, &mut rng);
    }

    // Re-drive the current state of every key over the healthy link: the
    // after-images carry full documents and fresh versions, so this
    // repairs whatever the disconnect swallowed (the role the cluster's
    // write-stream retention plays for short gaps, §5.1). Two subtleties:
    //
    // * a delete swallowed by the gap leaves a ghost key in the live
    //   result that no surviving document can repair (deleting an absent
    //   key is NotFound, so nothing is published) — absent keys are
    //   re-driven as a fresh save+delete pair, whose versions continue
    //   past the tombstone;
    // * the supervisor's SUBSCRIBE replay is itself asynchronous, so a
    //   repair notification published before the broker re-established
    //   the topic pump is lost like any other envelope — hence the
    //   re-drive is retried until the live results converge.
    let everything = QuerySpec::filter("items", doc! {});
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut present = std::collections::HashSet::new();
        for item in host.store.execute(&everything).unwrap() {
            present.insert(item.key.clone());
            if let Some(doc) = item.doc {
                let _ = app.save("items", item.key, doc);
            }
        }
        for k in 0..30i64 {
            let key = Key::of(k);
            if !present.contains(&key) {
                let _ = app.save("items", key.clone(), doc! { "n" => -1i64 });
                let _ = app.delete("items", key);
            }
        }
        let settle = Instant::now() + Duration::from_secs(5);
        let mut converged = false;
        while Instant::now() < settle {
            if divergences(&host.store, &mut subs).is_empty() {
                converged = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no convergence (post-disconnect) after repeated re-drives:\n{}",
            divergences(&host.store, &mut subs).join("\n")
        );
    }
    assert!(link.metrics().reconnects.load(Ordering::Relaxed) >= 2, "metrics record the reconnect");
    link.shutdown();
}

/// Regression for the mixed-version flake: a reconnect mid-stream (the
/// client's heartbeat supervisor fires under CPU starvation, or the link
/// drops) loses in-flight publishes and notifications at-most-once. The
/// keeper's link-generation watch must repair that **on its own** — ring
/// replay plus subscription renewal — so live results converge without
/// the application re-driving a single write.
#[test]
fn reconnect_repair_restores_convergence_without_redrive() {
    let host = cluster_host();
    let proxy = ChaosProxy::start(
        host.server.local_addr().to_string(),
        ChaosProxyConfig { seed: 31, ..ChaosProxyConfig::default() },
    )
    .expect("start chaos proxy");
    let link = remote(&proxy.local_addr().to_string());
    let app = AppServer::start(
        "netstack-regen",
        Arc::clone(&host.store),
        link.clone(),
        AppServerConfig::default(),
    );

    let spec = QuerySpec::filter("items", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(
        sub.events().timeout(Duration::from_secs(10)).next(),
        Some(ClientEvent::Initial(_))
    ));
    let mut subs = vec![(sub, spec)];

    let mut rng = StdRng::seed_from_u64(3030);
    for _ in 0..60 {
        random_write(&app, &mut rng);
    }
    assert_converges(&host.store, &mut subs, Duration::from_secs(20), "pre-disconnect");

    // Sever the link and write into the gap. These publishes are lost on
    // the wire (at-most-once) but retained in the app server's write ring.
    let reconnects_before = link.metrics().reconnects.load(Ordering::Relaxed);
    let replays_before = app.reconnect_replays();
    link.kick();
    proxy.reset_all();
    for _ in 0..40 {
        random_write(&app, &mut rng);
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    while link.metrics().reconnects.load(Ordering::Relaxed) <= reconnects_before {
        assert!(Instant::now() < deadline, "supervisor should reconnect");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(link.wait_connected(Duration::from_secs(10)));

    // No re-drive: the generation watch alone must replay the ring and
    // renew the subscription until the live result matches the pull truth.
    assert_converges(&host.store, &mut subs, Duration::from_secs(30), "generation-watch repair");
    let deadline = Instant::now() + Duration::from_secs(5);
    while app.reconnect_replays() <= replays_before {
        assert!(Instant::now() < deadline, "keeper should record the generation-triggered replay");
        std::thread::sleep(Duration::from_millis(10));
    }
    link.shutdown();
}

/// Truncated frames (a torn tail followed by a reset) are contained: the
/// decoder holds the partial frame, the supervisor reconnects, and
/// traffic keeps flowing — no panic, no wedge.
#[test]
fn truncated_frames_are_survived() {
    let host = cluster_host();
    let proxy = ChaosProxy::start(
        host.server.local_addr().to_string(),
        ChaosProxyConfig { seed: 13, truncate_probability: 0.2, ..ChaosProxyConfig::default() },
    )
    .expect("start chaos proxy");

    // Subscriber on a clean link; publisher through the truncating proxy.
    let clean = remote(&host.server.local_addr().to_string());
    let sub = clean.subscribe("lossy");
    let ack_deadline = Instant::now() + Duration::from_secs(10);
    while clean.last_acked() < 1 {
        assert!(Instant::now() < ack_deadline, "clean subscribe should be acked");
        std::thread::sleep(Duration::from_millis(5));
    }

    let lossy = remote(&proxy.local_addr().to_string());
    let mut received = 0u32;
    for i in 0..200u32 {
        lossy.publish("lossy", invalidb::broker::Bytes::from(i.to_be_bytes().to_vec()));
        std::thread::sleep(Duration::from_millis(2));
        while sub.try_recv().is_some() {
            received += 1;
        }
    }
    let settle = Instant::now() + Duration::from_secs(2);
    while Instant::now() < settle {
        if sub.try_recv().is_some() {
            received += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    assert!(received > 0, "some publishes survive the lossy link");
    assert!(
        lossy.metrics().reconnects.load(Ordering::Relaxed) >= 2,
        "truncation forces reconnects (got {})",
        lossy.metrics().reconnects.load(Ordering::Relaxed)
    );
    clean.shutdown();
    lossy.shutdown();
}
