//! Kill a matching worker process mid-stream and prove the cluster heals:
//! the epoch bumps, orphaned cells land on survivors, and a subscription
//! registered before the crash keeps delivering — exactly one notification
//! per fresh write, none lost, none duplicated.
//!
//! Topology (2×2 grid, four OS processes):
//!
//! * this test: event layer (`BrokerServer`), [`Coordinator`], store,
//!   app server, and the subscribing client;
//! * three `invalidb-workerd` children on the wire. The first joiner gets
//!   all four cells (placement is stable); SIGKILLing it orphans the whole
//!   grid, and the two survivors split it two cells each — which also
//!   exercises the shuffle path, since rows end up spanning workers.

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::cluster::{Coordinator, CoordinatorConfig};
use invalidb::common::GridShape;
use invalidb::net::{BrokerServer, BrokerServerConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::collections::HashMap;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spawn_workerd(name: &str, coordinator: &str, event: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_invalidb-workerd"))
        .args(["--coordinator", coordinator, "--event", event, "--name", name])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn invalidb-workerd")
}

struct Reaper(Vec<(String, Child)>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for (_, child) in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn sigkill_failover_loses_no_subscriptions() {
    // ----- in-test control plane: event layer + coordinator -------------
    let broker = Broker::new();
    let event_server = BrokerServer::bind("127.0.0.1:0", broker.clone(), BrokerServerConfig::default())
        .expect("bind event layer");
    let event_addr = event_server.local_addr().to_string();
    let mut coord_config = CoordinatorConfig::new(GridShape::new(2, 2));
    coord_config.heartbeat_timeout = Duration::from_millis(600);
    let coordinator =
        Coordinator::bind("127.0.0.1:0", broker.clone(), coord_config).expect("bind coordinator");
    let coord_addr = coordinator.local_addr().to_string();

    // ----- three worker processes ---------------------------------------
    // The first joiner takes the whole grid (stable placement); spawn it
    // alone first so the victim is deterministic.
    let mut children =
        Reaper(vec![("victim".to_string(), spawn_workerd("victim", &coord_addr, &event_addr))]);
    assert!(coordinator.wait_assigned(Duration::from_secs(30)), "initial assignment");
    for name in ["survivor-a", "survivor-b"] {
        children.0.push((name.to_string(), spawn_workerd(name, &coord_addr, &event_addr)));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while coordinator.workers_alive() < 3 {
        assert!(Instant::now() < deadline, "all three workers should join");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(coordinator.assignment().cells_of("victim").len(), 4, "victim owns the grid");

    // ----- app server + subscription ------------------------------------
    let store = Arc::new(Store::new());
    let app = Arc::new(AppServer::start(
        "failover",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder()
            .write_replay_buffer(2048)
            .renewals_per_sec(100.0)
            .build()
            .expect("valid config"),
    ));
    let spec = QuerySpec::filter("readings", doc! { "hot" => true });
    let mut sub = app.subscribe(&spec).expect("subscribe");
    match sub.events().timeout(Duration::from_secs(10)).next() {
        Some(ClientEvent::Initial(_)) => {}
        other => panic!("expected initial result, got {other:?}"),
    }
    app.insert("readings", Key::of("pre"), doc! { "hot" => true, "seq" => 0i64 }).unwrap();
    let got_pre = sub
        .events()
        .timeout(Duration::from_secs(10))
        .any(|e| matches!(&e, ClientEvent::Change(c) if c.item.key == Key::of("pre")));
    assert!(got_pre, "pre-kill write must notify");

    // ----- sustained writes while we pull the rug ------------------------
    let writer_stop = Arc::new(AtomicBool::new(false));
    let writer_seq = Arc::new(AtomicU64::new(0));
    let writer = {
        let app = Arc::clone(&app);
        let stop = Arc::clone(&writer_stop);
        let seq = Arc::clone(&writer_seq);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let n = seq.fetch_add(1, Ordering::Relaxed);
                app.insert(
                    "readings",
                    Key::of(format!("bg{n}")),
                    doc! { "hot" => true, "seq" => n as i64 },
                )
                .unwrap();
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let epoch_before = coordinator.epoch();
    let (_, victim) = children.0.iter_mut().find(|(name, _)| name == "victim").unwrap();
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // ----- convergence ----------------------------------------------------
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let table = coordinator.assignment();
        if coordinator.workers_alive() == 2 && table.unassigned() == 0 && table.epoch > epoch_before {
            break;
        }
        assert!(Instant::now() < deadline, "failover did not converge: {}", table.render());
        std::thread::sleep(Duration::from_millis(20));
    }
    let table = coordinator.assignment();
    assert_eq!(table.cells_of("victim").len(), 0, "{}", table.render());
    assert_eq!(
        table.cells_of("survivor-a").len() + table.cells_of("survivor-b").len(),
        4,
        "{}",
        table.render()
    );

    // Let in-flight repair (write replay + renewals) settle, then stop the
    // background writer and drain everything it produced.
    writer_stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    let mut quiet = Instant::now();
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while quiet.elapsed() < Duration::from_secs(2) {
        assert!(Instant::now() < drain_deadline, "event stream never went quiet");
        if sub.events().timeout(Duration::from_millis(200)).next().is_some() {
            quiet = Instant::now();
        }
    }

    // ----- the verdict: fresh writes notify exactly once ------------------
    const PROBES: usize = 8;
    for i in 0..PROBES {
        app.insert(
            "readings",
            Key::of(format!("probe{i}")),
            doc! { "hot" => true, "probe" => i as i64 },
        )
        .unwrap();
    }
    let mut seen: HashMap<String, usize> = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(15);
    while seen.len() < PROBES && Instant::now() < deadline {
        for event in sub.events().timeout(Duration::from_millis(250)) {
            if let ClientEvent::Change(c) = &event {
                let key = format!("{}", c.item.key);
                if key.contains("probe") {
                    *seen.entry(key).or_insert(0) += 1;
                }
            }
        }
    }
    assert_eq!(seen.len(), PROBES, "lost subscriptions: only {seen:?} notified");
    // A grace window to catch duplicates trailing in.
    let dup_deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < dup_deadline {
        for event in sub.events().timeout(Duration::from_millis(200)) {
            if let ClientEvent::Change(c) = &event {
                let key = format!("{}", c.item.key);
                if key.contains("probe") {
                    *seen.entry(key).or_insert(0) += 1;
                }
            }
        }
    }
    for (key, count) in &seen {
        assert_eq!(*count, 1, "duplicate notification for {key}: {seen:?}");
    }

    assert!(app.epoch_replays() >= 1, "app server should have replayed its write ring");
    drop(sub);
    coordinator.shutdown();
}
