//! Whole-system integration: store + broker + cluster + app server +
//! baseline providers driven by one workload, verified for agreement.

use invalidb::baselines::{InvaliDbProvider, LiveQuery, LogTailing, PollAndDiff, RealTimeProvider};
use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::{Store, UpdateSpec};
use invalidb::{doc, Key, QuerySpec, SortDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// All three real-time mechanisms must converge to the same result as the
/// authoritative pull query, for both unsorted and sorted queries.
#[test]
fn three_providers_converge_to_pull_truth() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app =
        Arc::new(AppServer::start("eq", Arc::clone(&store), broker.clone(), AppServerConfig::default()));

    let poll = PollAndDiff::new(Arc::clone(&store), Duration::from_millis(40));
    let tail = LogTailing::new(Arc::clone(&store));
    let invalidb = InvaliDbProvider::new(Arc::clone(&app));
    let providers: Vec<&dyn RealTimeProvider> = vec![&poll, &tail, &invalidb];

    let unsorted = QuerySpec::filter("items", doc! { "n" => doc! { "$gte" => 50i64 } });
    let sorted = QuerySpec::filter("items", doc! {}).sorted_by("n", SortDirection::Desc).with_limit(5);

    let mut subs: Vec<(String, Box<dyn LiveQuery>, QuerySpec)> = Vec::new();
    for p in &providers {
        for spec in [&unsorted, &sorted] {
            let mut sub = p.subscribe(spec).unwrap();
            assert!(matches!(sub.next_event(Duration::from_secs(5)), Some(ClientEvent::Initial(_))));
            subs.push((p.name().to_string(), sub, spec.clone()));
        }
    }

    // Randomized workload through the app server (so InvaliDB sees it too;
    // the baselines watch the store directly).
    let mut rng = StdRng::seed_from_u64(2020);
    for i in 0..300 {
        let key = Key::of(rng.gen_range(0..40i64));
        match rng.gen_range(0..3) {
            0 => {
                let _ = app.save("items", key, doc! { "n" => rng.gen_range(0..100i64) });
            }
            1 => {
                let _ = app.update(
                    "items",
                    key,
                    &UpdateSpec::from_document(
                        &doc! { "$inc" => doc! { "n" => rng.gen_range(-20..20i64) } },
                    )
                    .unwrap(),
                );
            }
            _ => {
                let _ = app.delete("items", key);
            }
        }
        if i % 50 == 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Let everything settle (poll interval, oplog tail, cluster pipeline).
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        for (_, sub, _) in subs.iter_mut() {
            while sub.try_next_event().is_some() {}
        }
        let mut divergences = Vec::new();
        for (name, sub, spec) in subs.iter_mut() {
            let mut truth: Vec<Key> = store.execute(spec).unwrap().into_iter().map(|r| r.key).collect();
            let mut live = sub.result().keys();
            if spec.sort.is_empty() {
                live.sort();
                truth.sort();
            }
            if live != truth {
                divergences.push(format!("{name} on {spec}: live {live:?} truth {truth:?}"));
            }
        }
        if divergences.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "providers failed to converge:\n{}",
            divergences.join("\n")
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Final strict check with names for debuggability.
    for (name, sub, spec) in subs.iter_mut() {
        let truth: Vec<Key> = store.execute(spec).unwrap().into_iter().map(|r| r.key).collect();
        let mut live = sub.result().keys();
        let mut expect = truth.clone();
        if spec.sort.is_empty() {
            live.sort();
            expect.sort();
        }
        assert_eq!(live, expect, "{name} diverged on {spec}");
    }
    cluster.shutdown();
}

/// The cluster works with a completely different query engine plugged in
/// (§5.3): end-to-end through broker + cluster + app server with the
/// equality-only KV engine.
#[test]
fn pluggable_kv_engine_end_to_end() {
    use invalidb::query::KvQueryEngine;
    let store = Arc::new(Store::with_engine(Arc::new(KvQueryEngine)));
    let broker = Broker::new();
    let cfg = ClusterConfig::new(2, 2).with_engine(Arc::new(KvQueryEngine));
    let cluster = Cluster::start(broker.clone(), cfg);
    let app = AppServer::start("kv", Arc::clone(&store), broker.clone(), AppServerConfig::default());

    let spec = QuerySpec::filter("kvdata", doc! { "color" => "green" });
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(
        sub.events().timeout(Duration::from_secs(5)).next(),
        Some(ClientEvent::Initial(_))
    ));
    app.insert("kvdata", Key::of(1i64), doc! { "color" => "green" }).unwrap();
    app.insert("kvdata", Key::of(2i64), doc! { "color" => "red" }).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("kv engine matches") {
        ClientEvent::Change(c) => assert_eq!(c.item.key, Key::of(1i64)),
        other => panic!("unexpected {other:?}"),
    }
    // Queries beyond the engine's power are rejected cleanly at subscribe.
    let range = QuerySpec::filter("kvdata", doc! { "n" => doc! { "$gt" => 1i64 } });
    assert!(app.subscribe(&range).is_err());
    cluster.shutdown();
}

/// The store's oplog, indexes and the real-time path stay consistent when
/// the same collection takes concurrent traffic from multiple threads.
#[test]
fn concurrent_writers_with_live_subscription() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app = Arc::new(AppServer::start(
        "conc",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::default(),
    ));

    let spec = QuerySpec::filter("c", doc! { "hot" => true });
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().unwrap();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let app = Arc::clone(&app);
            std::thread::spawn(move || {
                for i in 0..50i64 {
                    let key = Key::of(t * 1_000 + i);
                    app.insert("c", key, doc! { "hot" => i % 2 == 0 }).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // 4 threads x 25 matching inserts.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while sub.result().len() < 100 && std::time::Instant::now() < deadline {
        while sub.events().non_blocking().next().is_some() {}
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(sub.result().len(), 100);
    assert_eq!(store.execute(&spec).unwrap().len(), 100);
    cluster.shutdown();
}

/// Durability across restarts: a WAL-backed store is stopped and reopened;
/// the real-time layer comes back with correct initial results and —
/// crucially — version continuity, so staleness avoidance keeps working.
#[test]
fn durable_store_restart_with_realtime_layer() {
    let mut path = std::env::temp_dir();
    path.push(format!("invalidb-fullstack-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Session 1: write through the full stack.
    {
        let store = Arc::new(Store::open(&path).unwrap());
        let broker = Broker::new();
        let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
        let app =
            AppServer::start("dur", Arc::clone(&store), broker.clone(), AppServerConfig::default());
        for i in 0..10i64 {
            app.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
        }
        app.delete("t", Key::of(3i64)).unwrap();
        std::thread::sleep(Duration::from_millis(150)); // WAL flush interval
        cluster.shutdown();
    }

    // Session 2: reopen; subscribe; data and versions are back.
    let store = Arc::new(Store::open(&path).unwrap());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
    let app = AppServer::start("dur", Arc::clone(&store), broker.clone(), AppServerConfig::default());
    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("initial") {
        ClientEvent::Initial(items) => assert_eq!(items.len(), 9, "9 records survived"),
        other => panic!("unexpected {other:?}"),
    }
    // Re-insert the deleted key: version continues past the tombstone, so
    // the matching node never confuses the new record with the old one.
    let w = app.insert("t", Key::of(3i64), doc! { "n" => 3i64 }).unwrap();
    assert_eq!(w.version, 3, "tombstone version survived the restart");
    match sub.events().timeout(Duration::from_secs(5)).next().expect("add") {
        ClientEvent::Change(c) => {
            assert_eq!(c.match_type, invalidb::MatchType::Add);
            assert_eq!(c.item.version, 3);
        }
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
    let _ = std::fs::remove_file(&path);
}
