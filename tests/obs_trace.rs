//! End-to-end stage tracing: a sampled write must arrive at the client
//! carrying a trace whose stage timestamps are monotone and cover the
//! whole pipeline — both in-process and over the TCP event layer (where
//! the broker server contributes its own stamp via the frame-header
//! trace extension).

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::common::TraceContext;
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::net::{BrokerServer, BrokerServerConfig, RemoteBroker, RemoteBrokerConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, MetricsRegistry, QuerySpec, Stage};
use std::sync::Arc;
use std::time::Duration;

/// Asserts the trace covers `expected` stages in order with monotone
/// non-decreasing timestamps (stages never overlap: each begins at or
/// after the previous one ended).
fn assert_stage_order(trace: &TraceContext, expected: &[Stage]) {
    let stages: Vec<Stage> = trace.stamps.iter().map(|s| s.stage).collect();
    assert_eq!(stages, expected, "stage sequence");
    for pair in trace.stamps.windows(2) {
        assert!(
            pair[0].at_micros <= pair[1].at_micros,
            "non-monotone stamps: {:?} at {} then {:?} at {}",
            pair[0].stage,
            pair[0].at_micros,
            pair[1].stage,
            pair[1].at_micros,
        );
    }
    // The per-stage breakdown must account for the full end-to-end time.
    let sum: u64 = trace.breakdown().iter().map(|(_, _, d)| d).sum();
    assert_eq!(sum, trace.elapsed_micros(), "breakdown sums to end-to-end latency");
}

/// Waits for the next traced Change event and returns its trace.
fn traced_change(sub: &mut invalidb::client::Subscription) -> TraceContext {
    for event in sub.events().timeout(Duration::from_secs(10)) {
        if matches!(event, ClientEvent::Change(_)) {
            return sub.last_trace().expect("change carries a trace").clone();
        }
    }
    panic!("no change notification arrived");
}

#[test]
fn in_process_trace_covers_pipeline_with_monotone_stamps() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let metrics = MetricsRegistry::new();
    let cluster = Cluster::start(
        broker.clone(),
        ClusterConfig::builder(2, 2).metrics(metrics.clone()).build().unwrap(),
    );
    let config =
        AppServerConfig::builder().trace_sample_every(1).metrics(metrics.clone()).build().unwrap();
    let app = AppServer::start("obs", Arc::clone(&store), broker.clone(), config);

    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(
        sub.events().timeout(Duration::from_secs(5)).next(),
        Some(ClientEvent::Initial(_))
    ));

    app.insert("t", Key::of(1i64), doc! { "n" => 1i64 }).unwrap();
    let trace = traced_change(&mut sub);
    // No broker stamp in-process: publish is a direct channel send.
    assert_stage_order(
        &trace,
        &[Stage::AppServer, Stage::Ingestion, Stage::Matching, Stage::Notifier, Stage::Delivery],
    );

    // The shared registry recorded the trace, and a snapshot carries the
    // same numbers through its JSON round-trip.
    let snap = app.metrics();
    let breakdown = snap.stage_breakdown();
    assert!(!breakdown.is_empty(), "stage histograms recorded");
    let restored = invalidb::MetricsSnapshot::from_json(&snap.to_json()).expect("parse snapshot");
    assert_eq!(snap.to_text_table(), restored.to_text_table(), "JSON round-trip same numbers");
    cluster.shutdown();
}

#[test]
fn tcp_trace_adds_the_broker_stamp() {
    // Cluster side: store + cluster + event layer served on TCP.
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let metrics = MetricsRegistry::new();
    let cluster = Cluster::start(
        broker.clone(),
        ClusterConfig::builder(1, 2).metrics(metrics.clone()).build().unwrap(),
    );
    let server_config = BrokerServerConfig { metrics: metrics.clone(), ..BrokerServerConfig::default() };
    let server = BrokerServer::bind("127.0.0.1:0", broker, server_config).expect("bind event layer");

    // App-server side: connected through a RemoteBroker.
    let remote = RemoteBroker::connect(
        server.local_addr().to_string(),
        RemoteBrokerConfig { client_name: "obs-trace-test".into(), ..Default::default() },
    );
    assert!(remote.wait_connected(Duration::from_secs(5)));
    let config =
        AppServerConfig::builder().trace_sample_every(1).metrics(metrics.clone()).build().unwrap();
    let app = AppServer::start("obs-tcp", Arc::clone(&store), remote.clone(), config);

    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(
        sub.events().timeout(Duration::from_secs(10)).next(),
        Some(ClientEvent::Initial(_))
    ));

    app.insert("t", Key::of(1i64), doc! { "n" => 1i64 }).unwrap();
    let trace = traced_change(&mut sub);
    // Over TCP the broker server stamps the hop it owns.
    assert_stage_order(
        &trace,
        &[
            Stage::AppServer,
            Stage::Broker,
            Stage::Ingestion,
            Stage::Matching,
            Stage::Notifier,
            Stage::Delivery,
        ],
    );

    // The server-side registry saw the sidecar.
    let snap = metrics.snapshot();
    let traced = snap.counters.get("net.traced_publishes").copied().unwrap_or(0);
    assert!(traced >= 1, "broker server counted traced publishes: {traced}");

    remote.shutdown();
    cluster.shutdown();
}
