//! Eventual-consistency guarantees under event-layer misbehaviour (§5).
//!
//! "Since communication over the event layer is asynchronous, InvaliDB may
//! receive writes delayed or skewed and change notifications may be
//! generated out-of-order. While real-time query results may thus diverge
//! temporarily from database state, they are eventually consistent: they
//! synchronize once InvaliDB has applied the same write operations as the
//! database."

use invalidb::broker::{Broker, ChaosConfig, ChaosScope};
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec, SortDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Heavy write churn through a delaying/reordering event layer: the
/// push-maintained result must converge to the pull truth for unsorted
/// queries (versioned staleness avoidance absorbs the reordering).
#[test]
fn unsorted_results_converge_under_reordering() {
    for seed in [1u64, 7, 23] {
        // Full chaos: even the notification channel reorders; the client's
        // version-guarded result maintenance must absorb it.
        let broker = Broker::with_chaos(ChaosConfig {
            seed,
            delay: Some((Duration::ZERO, Duration::from_millis(25))),
            drop_probability: 0.0,
            scope: ChaosScope::AllTopics,
        });
        let store = Arc::new(Store::new());
        let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
        let app =
            AppServer::start("chaos", Arc::clone(&store), broker.clone(), AppServerConfig::default());

        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 50i64 } });
        let mut sub = app.subscribe(&spec).unwrap();
        assert!(matches!(
            sub.events().timeout(Duration::from_secs(5)).next(),
            Some(ClientEvent::Initial(_))
        ));

        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let key = Key::of(rng.gen_range(0..25i64));
            if rng.gen_bool(0.2) {
                let _ = app.delete("t", key);
            } else {
                let _ = app.save("t", key, doc! { "n" => rng.gen_range(0..100i64) });
            }
        }

        // Convergence: live result (as a set) equals the pull truth.
        let deadline = std::time::Instant::now() + Duration::from_secs(15);
        loop {
            while sub.events().non_blocking().next().is_some() {}
            let mut live = sub.result().keys();
            live.sort();
            let mut truth: Vec<Key> = store.execute(&spec).unwrap().into_iter().map(|r| r.key).collect();
            truth.sort();
            if live == truth {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "seed {seed}: live {live:?} never converged to {truth:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
        cluster.shutdown();
    }
}

/// Sorted queries under reordering: renewal may fire, but the visible
/// window must converge to the pull truth in *order*.
#[test]
fn sorted_results_converge_under_reordering() {
    // Chaos scoped to the cluster-inbound topic: writes arrive delayed and
    // skewed (the paper's model), while the notification channel stays
    // ordered like the production WebSocket — index-based edit scripts
    // require ordered delivery.
    let broker = Broker::with_chaos(ChaosConfig {
        seed: 99,
        delay: Some((Duration::ZERO, Duration::from_millis(15))),
        drop_probability: 0.0,
        scope: ChaosScope::TopicPrefix("invalidb.cluster".into()),
    });
    let store = Arc::new(Store::new());
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 2));
    let app = AppServer::start("chaos2", Arc::clone(&store), broker.clone(), AppServerConfig::default());

    for i in 0..20i64 {
        app.insert("s", Key::of(i), doc! { "rank" => i }).unwrap();
    }
    let spec = QuerySpec::filter("s", doc! {}).sorted_by("rank", SortDirection::Asc).with_limit(5);
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().unwrap();

    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..150 {
        let key = Key::of(rng.gen_range(0..20i64));
        if rng.gen_bool(0.3) {
            let _ = app.delete("s", key);
        } else {
            let _ = app.save("s", key, doc! { "rank" => rng.gen_range(0..100i64) });
        }
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        while sub.events().non_blocking().next().is_some() {}
        let live = sub.result().keys();
        let truth: Vec<Key> = store.execute(&spec).unwrap().into_iter().map(|r| r.key).collect();
        if live == truth {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sorted window {live:?} never converged to {truth:?} (renewals: {})",
            app.renewals_performed()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

/// Version-based staleness avoidance: an old after-image arriving after a
/// newer one (or after a delete) must never resurface in the result.
#[test]
fn stale_after_images_never_resurrect_deleted_records() {
    use invalidb::broker::CLUSTER_TOPIC;
    use invalidb::common::{AfterImage, ClusterMessage, SubscriptionId, SubscriptionRequest, TenantId};

    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
    let notify = broker.subscribe("invalidb.notify.stale");
    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    let publish = |msg: &ClusterMessage| {
        broker.publish(CLUSTER_TOPIC, invalidb::json::document_to_payload(&msg.to_document()));
    };
    publish(&ClusterMessage::Subscribe(SubscriptionRequest {
        tenant: TenantId::new("stale"),
        subscription: SubscriptionId(1),
        query_hash: spec.stable_hash(),
        spec: spec.clone(),
        initial: vec![],
        slack: 0,
        ttl_micros: 60_000_000,
        renewal: false,
    }));
    let write = |version: u64, doc: Option<invalidb::Document>| {
        publish(&ClusterMessage::Write(AfterImage {
            tenant: TenantId::new("stale"),
            collection: "t".into(),
            key: Key::of("x"),
            version,
            doc,
            written_at: 0,
            trace: None,
        }));
    };
    // v1 insert, v2 delete arrive in order; then the v1 after-image is
    // "replayed" late (skewed duplicate from the event layer).
    write(1, Some(doc! { "n" => 5i64 }));
    write(2, None);
    write(1, Some(doc! { "n" => 5i64 }));

    let mut kinds = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        if let Some(p) = notify.recv_timeout(Duration::from_millis(100)) {
            let d = invalidb::json::payload_to_document(&p).unwrap();
            if d.get("type").and_then(|v| v.as_str()) == Some("heartbeat") {
                continue;
            }
            let n = invalidb::Notification::from_document(&d).unwrap();
            if let invalidb::NotificationKind::Change(c) = n.kind {
                kinds.push(c.match_type);
            }
        }
    }
    assert_eq!(
        kinds,
        vec![invalidb::MatchType::Add, invalidb::MatchType::Remove],
        "the stale v1 replay must be dropped"
    );
    cluster.shutdown();
}
