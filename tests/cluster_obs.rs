//! Cluster-wide observability, proven on a real 4-process topology (this
//! test + three `invalidb-workerd` children on the wire):
//!
//! * a sampled write produces **one trace spanning processes** — the
//!   filtering-stage stamp is annotated with the workerd's name and its
//!   assignment epoch;
//! * the coordinator's admin endpoint serves `/cluster` (membership,
//!   health, assignment table) and a **federated `/metrics`** where each
//!   worker's series carry a `worker="..."` label;
//! * the per-tenant notification-staleness SLO histogram fills on the app
//!   server;
//! * after SIGKILLing the worker that owns the grid, the coordinator
//!   records a finite `cluster.failover_mttr_ms` once the survivors have
//!   rebuilt and caught up.

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::cluster::{Coordinator, CoordinatorConfig};
use invalidb::common::{GridShape, Stage};
use invalidb::net::{BrokerServer, BrokerServerConfig};
use invalidb::obs::{from_prometheus_federated, to_prometheus, MetricsRegistry};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spawn_workerd(name: &str, coordinator: &str, event: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_invalidb-workerd"))
        .args(["--coordinator", coordinator, "--event", event, "--name", name])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn invalidb-workerd")
}

struct Reaper(Vec<(String, Child)>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for (_, child) in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Minimal HTTP/1.0 GET against the admin endpoint.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin");
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

#[test]
fn cluster_observability_end_to_end() {
    // ----- control plane: event layer + coordinator with admin ----------
    let broker = Broker::new();
    let event_server = BrokerServer::bind("127.0.0.1:0", broker.clone(), BrokerServerConfig::default())
        .expect("bind event layer");
    let event_addr = event_server.local_addr().to_string();
    let coord_registry = MetricsRegistry::new();
    let mut coord_config = CoordinatorConfig::new(GridShape::new(2, 2));
    coord_config.heartbeat_timeout = Duration::from_millis(600);
    coord_config.metrics = coord_registry.clone();
    coord_config.admin_addr = Some("127.0.0.1:0".to_string());
    let coordinator =
        Coordinator::bind("127.0.0.1:0", broker.clone(), coord_config).expect("bind coordinator");
    let coord_addr = coordinator.local_addr().to_string();
    let admin = coordinator.admin_addr().expect("coordinator admin endpoint bound");

    // ----- three worker processes: victim owns the whole grid -----------
    let mut children =
        Reaper(vec![("victim".to_string(), spawn_workerd("victim", &coord_addr, &event_addr))]);
    assert!(coordinator.wait_assigned(Duration::from_secs(30)), "initial assignment");
    for name in ["survivor-a", "survivor-b"] {
        children.0.push((name.to_string(), spawn_workerd(name, &coord_addr, &event_addr)));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while coordinator.workers_alive() < 3 {
        assert!(Instant::now() < deadline, "all three workers should join");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(coordinator.assignment().cells_of("victim").len(), 4, "victim owns the grid");

    // ----- app server with every write traced ---------------------------
    let store = Arc::new(Store::new());
    let app_registry = MetricsRegistry::new();
    let app = AppServer::start(
        "obs",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder()
            .write_replay_buffer(2048)
            .renewals_per_sec(100.0)
            .trace_sample_every(1)
            .metrics(app_registry.clone())
            .build()
            .expect("valid config"),
    );
    let spec = QuerySpec::filter("readings", doc! { "hot" => true });
    let mut sub = app.subscribe(&spec).expect("subscribe");
    match sub.events().timeout(Duration::from_secs(10)).next() {
        Some(ClientEvent::Initial(_)) => {}
        other => panic!("expected initial result, got {other:?}"),
    }

    // ----- 1) cross-process trace carries a worker-stamped stage --------
    app.insert("readings", Key::of("traced"), doc! { "hot" => true }).unwrap();
    let notified = sub
        .events()
        .timeout(Duration::from_secs(10))
        .any(|e| matches!(&e, ClientEvent::Change(c) if c.item.key == Key::of("traced")));
    assert!(notified, "traced write must notify");
    let trace = sub.last_trace().expect("sampled trace delivered with the event").clone();
    let worker_stamp = trace
        .stamps
        .iter()
        .find(|s| s.stage == Stage::Matching && s.worker.is_some())
        .unwrap_or_else(|| panic!("no worker-stamped matching stage in {trace:?}"));
    assert_eq!(worker_stamp.worker.as_deref(), Some("victim"), "{trace:?}");
    assert!(worker_stamp.epoch.unwrap_or(0) >= 1, "stamp carries the assignment epoch");
    // The trace spans app server and workerd; delivery closes it.
    assert_eq!(trace.stamps.first().map(|s| s.stage), Some(Stage::AppServer));
    assert_eq!(trace.stamps.last().map(|s| s.stage), Some(Stage::Delivery));

    // ----- 2) per-tenant staleness SLO histogram fills ------------------
    let snap = app_registry.snapshot();
    let slo = snap.hists.get("slo.obs.staleness_us").expect("staleness histogram recorded");
    assert!(slo.count >= 1 && slo.p99 > 0, "staleness quantiles populated: {slo:?}");
    assert!(
        to_prometheus(&snap).contains("slo.obs.staleness_us"),
        "staleness histogram exported to Prometheus"
    );

    // ----- 3) /cluster reports every member -----------------------------
    let (status, members) = http_get(admin, "/cluster");
    assert_eq!(status, 200);
    for name in ["victim", "survivor-a", "survivor-b"] {
        assert!(members.contains(&format!("\"name\":\"{name}\"")), "missing {name}: {members}");
    }
    assert!(members.contains("\"unassigned\":0"), "{members}");

    // ----- 4) federated /metrics carries worker-labeled series ----------
    let deadline = Instant::now() + Duration::from_secs(30);
    let federated = loop {
        let (status, text) = http_get(admin, "/metrics");
        assert_eq!(status, 200);
        if text.contains("worker=\"victim\"")
            && text.contains("worker=\"survivor-a\"")
            && text.contains("worker=\"survivor-b\"")
        {
            break text;
        }
        assert!(Instant::now() < deadline, "federated series never appeared:\n{text}");
        std::thread::sleep(Duration::from_millis(100));
    };
    let parts = from_prometheus_federated(&federated).expect("parse federated exposition");
    let victim = parts.get("victim").expect("victim snapshot federated");
    assert_eq!(victim.gauges.get("worker.cells_hosted").copied(), Some(4));
    let coord_part = parts.get("").expect("coordinator's own series are unlabeled");
    assert!(coord_part.gauges.contains_key("cluster.epoch"));

    // ----- 5) SIGKILL the grid owner, read a finite MTTR ----------------
    let epoch_before = coordinator.epoch();
    let (_, victim_child) = children.0.iter_mut().find(|(name, _)| name == "victim").unwrap();
    victim_child.kill().expect("SIGKILL victim");
    victim_child.wait().expect("reap victim");

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let table = coordinator.assignment();
        if coordinator.workers_alive() == 2 && table.unassigned() == 0 && table.epoch > epoch_before {
            break;
        }
        assert!(Instant::now() < deadline, "failover did not converge: {}", table.render());
        std::thread::sleep(Duration::from_millis(20));
    }
    // Recovery is complete (and MTTR recorded) once the survivors report
    // cells at the new epoch and the subscription replay catches them up.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mttr_ms = loop {
        if let Some(&v) = coord_registry.snapshot().gauges.get("cluster.failover_mttr_ms") {
            break v;
        }
        assert!(Instant::now() < deadline, "cluster.failover_mttr_ms never recorded");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        mttr_ms > 0 && mttr_ms < 60_000,
        "MTTR should be a finite, plausible number, got {mttr_ms} ms"
    );
    let (_, members) = http_get(admin, "/cluster");
    assert!(members.contains("\"failover_in_progress\":false"), "{members}");

    drop(sub);
    coordinator.shutdown();
}
