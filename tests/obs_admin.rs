//! The operational plane over a real socket: golden round-trip of the
//! Prometheus exposition against the JSON snapshot, and the cluster
//! health model reacting to an induced network partition.
//!
//! Everything here observes the system the way an external operator
//! would — `GET` requests against the admin endpoint — never by poking
//! in-process state. The health scenario is the runbook's promised arc:
//! Healthy → Degraded (chaos proxy partitions the broker link) →
//! Healthy (partition heals, supervisor reconnects), with the flight
//! recorder holding the transitions and the reconnect in order.

use invalidb::broker::Broker;
use invalidb::net::{
    BrokerServer, BrokerServerConfig, ChaosProxy, ChaosProxyConfig, RemoteBroker, RemoteBrokerConfig,
};
use invalidb::obs::from_prometheus;
use invalidb::{
    AdminConfig, AdminServer, FlightEvent, FlightEventKind, HealthPolicy, MetricsRegistry,
    MetricsSnapshot,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Minimal HTTP/1.0 GET; returns (status code, body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to admin endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

/// Polls `/healthz` until the report's status matches `want` (the body is
/// the `HealthReport` JSON, so the status string appears verbatim).
fn await_health(addr: SocketAddr, want: &str, deadline: Duration) -> (u16, String) {
    let needle = format!("\"status\":\"{want}\"");
    let deadline = Instant::now() + deadline;
    loop {
        let (status, body) = http_get(addr, "/healthz");
        if body.contains(&needle) {
            return (status, body);
        }
        assert!(Instant::now() < deadline, "health never reached {want}; last report: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Golden round-trip: the Prometheus text served on `/metrics` must parse
/// back into exactly the snapshot served on `/metrics.json` — and both
/// must equal the in-process registry snapshot and survive a JSON
/// round-trip. One set of numbers, four renderings, zero drift.
#[test]
fn metrics_exposition_round_trips_over_socket() {
    let registry = MetricsRegistry::new();
    registry.add("matching.matched", 1_234);
    registry.inc("appserver.events_delivered");
    registry.set_gauge("appserver.active_subscriptions", 17);
    registry.set_gauge("matching.0x0.ingest_lag_us", 905);
    for v in [12u64, 120, 1_200, 95_000] {
        registry.record("stage.matching", v);
    }
    registry.record("net.broker_hop_us", 333);
    registry.slow_queries().charge("tenant-a", 42, || "SELECT * FROM t".into(), 1_500);

    let mut admin = AdminServer::bind("127.0.0.1:0", registry.clone(), AdminConfig::default())
        .expect("bind admin endpoint");
    let addr = admin.local_addr();

    // The health evaluator publishes `health.status` asynchronously; wait
    // for it so both scrapes see the same, settled registry.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, text) = http_get(addr, "/metrics");
        assert_eq!(status, 200, "/metrics must answer 200");
        if text.contains("health.status") {
            break;
        }
        assert!(Instant::now() < deadline, "health.status gauge never published");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (status, prom_text) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let from_prom = from_prometheus(&prom_text).expect("parse Prometheus exposition");

    let (status, json_text) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    let from_json = MetricsSnapshot::from_json(&json_text).expect("parse snapshot JSON");

    assert_eq!(from_prom, from_json, "text and JSON expositions must carry the same numbers");
    let live = registry.snapshot();
    assert_eq!(from_prom, live, "the wire exposition must equal the in-process snapshot");
    assert_eq!(
        MetricsSnapshot::from_json(&live.to_json()),
        Some(live),
        "snapshot JSON must round-trip losslessly"
    );

    let (status, queries) = http_get(addr, "/queries");
    assert_eq!(status, 200);
    assert!(queries.contains("SELECT * FROM t"), "slow-query log reaches /queries: {queries}");

    admin.shutdown();
}

/// The acceptance arc for the health model: partitioning the broker link
/// with the chaos proxy flips `/healthz` Healthy → Degraded; healing it
/// flips it back; and `/flight` holds the degraded transition, the
/// supervisor's reconnect, and the recovery transition in seq order.
#[test]
fn healthz_degrades_and_recovers_under_partition() {
    let registry = MetricsRegistry::new();
    let broker = Broker::new();
    let server = BrokerServer::bind(
        "127.0.0.1:0",
        broker,
        BrokerServerConfig {
            heartbeat_interval: Duration::from_millis(100),
            ..BrokerServerConfig::default()
        },
    )
    .expect("bind event-layer server");
    let proxy = ChaosProxy::start(
        server.local_addr().to_string(),
        ChaosProxyConfig { seed: 3, ..ChaosProxyConfig::default() },
    )
    .expect("start chaos proxy");
    let link = RemoteBroker::connect(
        proxy.local_addr().to_string(),
        RemoteBrokerConfig {
            client_name: "obs-admin-test".into(),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(400),
            reconnect_base: Duration::from_millis(50),
            reconnect_max: Duration::from_millis(200),
            metrics: registry.clone(),
            ..RemoteBrokerConfig::default()
        },
    );
    assert!(link.wait_connected(Duration::from_secs(5)), "initial connect through proxy");

    // Tight thresholds so the test resolves in wall-clock seconds; the
    // unavailable bar stays far away — the promised arc is via Degraded.
    let mut admin = AdminServer::bind(
        "127.0.0.1:0",
        registry.clone(),
        AdminConfig {
            health: HealthPolicy {
                heartbeat_degraded: Duration::from_millis(500),
                heartbeat_unavailable: Duration::from_secs(120),
                ..HealthPolicy::default()
            },
            eval_interval: Duration::from_millis(25),
            ..AdminConfig::default()
        },
    )
    .expect("bind admin endpoint");
    let addr = admin.local_addr();

    let (status, _) = await_health(addr, "healthy", Duration::from_secs(5));
    assert_eq!(status, 200, "healthy must be HTTP 200");

    proxy.partition(true);
    let (status, degraded) = await_health(addr, "degraded", Duration::from_secs(10));
    assert_eq!(status, 200, "degraded still serves (only unavailable is 503): {degraded}");
    assert!(
        degraded.contains("heartbeat_stale") || degraded.contains("disconnected"),
        "degraded report names a partition cause: {degraded}"
    );

    proxy.partition(false);
    let (status, _) = await_health(addr, "healthy", Duration::from_secs(10));
    assert_eq!(status, 200);
    assert!(link.wait_connected(Duration::from_secs(5)), "link back up after heal");

    // The flight recorder must tell the story in order: the degraded
    // transition happened before the reconnect that fixed it, which
    // happened before the recovery transition.
    let (status, flight_json) = http_get(addr, "/flight");
    assert_eq!(status, 200);
    let events = parse_flight(&flight_json);
    let degraded_seq = events
        .iter()
        .find(|e| e.kind == FlightEventKind::HealthTransition && e.detail.contains("-> degraded"))
        .map(|e| e.seq)
        .unwrap_or_else(|| panic!("no degraded transition in flight dump: {flight_json}"));
    let reconnect_seq = events
        .iter()
        .find(|e| e.kind == FlightEventKind::Reconnect && e.seq > degraded_seq)
        .map(|e| e.seq)
        .unwrap_or_else(|| panic!("no reconnect after the degraded transition: {flight_json}"));
    let recovered_seq = events
        .iter()
        .find(|e| {
            e.kind == FlightEventKind::HealthTransition
                && e.detail.contains("-> healthy")
                && e.seq > reconnect_seq
        })
        .map(|e| e.seq)
        .unwrap_or_else(|| panic!("no recovery transition after the reconnect: {flight_json}"));
    assert!(
        degraded_seq < reconnect_seq && reconnect_seq < recovered_seq,
        "flight order must be degrade ({degraded_seq}) -> reconnect ({reconnect_seq}) -> recover ({recovered_seq})"
    );

    admin.shutdown();
    link.shutdown();
}

/// Decodes the `/flight` JSON array back into events.
fn parse_flight(json: &str) -> Vec<FlightEvent> {
    let value = invalidb::json::parse_value(json).expect("flight dump is valid JSON");
    value
        .as_array()
        .expect("flight dump is a JSON array")
        .iter()
        .map(|v| {
            let doc = match v {
                invalidb::Value::Object(d) => d,
                other => panic!("flight entry is not an object: {other:?}"),
            };
            FlightEvent::from_document(doc).expect("flight entry decodes")
        })
        .collect()
}
