//! `invalidb-workerd` — a remote matching worker.
//!
//! Connects to a coordinator's frame port (`--coordinator`) for
//! membership and to the shared event layer (`--event`) for the actual
//! write/subscription stream, then hosts whatever grid cells the
//! coordinator assigns. Reconnects with backoff if either connection
//! drops; epochs only move forward. Runs until killed.
//!
//! ```text
//! invalidb-workerd --coordinator 127.0.0.1:7000 --event 127.0.0.1:7001 \
//!                  --name w1 --weight 2
//! ```

use invalidb::cluster::{Worker, WorkerConfig};
use invalidb::core::ClusterConfig;
use invalidb::net::{RemoteBroker, RemoteBrokerConfig};
use std::time::Duration;

struct Options {
    coordinator: String,
    event: String,
    name: String,
    weight: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: invalidb-workerd --coordinator ADDR --event ADDR \
         [--name NAME] [--weight N]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut coordinator = None;
    let mut event = None;
    let mut name = format!("worker-{}", std::process::id());
    let mut weight = 1u32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag_name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag_name}");
                usage()
            })
        };
        match flag.as_str() {
            "--coordinator" => coordinator = Some(value("--coordinator")),
            "--event" => event = Some(value("--event")),
            "--name" => name = value("--name"),
            "--weight" => weight = value("--weight").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    let (Some(coordinator), Some(event)) = (coordinator, event) else { usage() };
    Options { coordinator, event, name, weight }
}

fn main() {
    let opts = parse_options();
    let remote = RemoteBroker::connect(
        opts.event.clone(),
        RemoteBrokerConfig {
            client_name: format!("invalidb-workerd/{}", opts.name),
            ..Default::default()
        },
    );
    if !remote.wait_connected(Duration::from_secs(10)) {
        eprintln!("event layer at {} unreachable", opts.event);
        std::process::exit(1);
    }

    // The grid dimensions in the base config are placeholders; every
    // Assign frame carries the authoritative shape.
    let cluster_config = ClusterConfig::builder(1, 1).build().expect("valid base config");
    let mut config = WorkerConfig::new(opts.name.clone(), cluster_config);
    config.weight = opts.weight;
    let worker = Worker::connect(opts.coordinator.clone(), remote, config);

    println!("worker {} ready (coordinator {}, event {})", opts.name, opts.coordinator, opts.event);
    let _ = std::io::Write::flush(&mut std::io::stdout());

    // Operator console: report the hosted cell set on every change.
    let mut last: Option<(u64, Vec<usize>)> = None;
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let current = (worker.epoch(), worker.cells());
        if last.as_ref() != Some(&current) {
            println!("worker {} epoch {} hosts cells {:?}", opts.name, current.0, current.1);
            let _ = std::io::Write::flush(&mut std::io::stdout());
            last = Some(current);
        }
    }
}
