//! `invalidb-coordinatord` — the cluster coordinator daemon.
//!
//! Hosts two listeners in one process:
//!
//! * the **event layer** (`--event-listen`): a [`BrokerServer`] that
//!   application servers and workers publish/subscribe through;
//! * the **coordinator frame port** (`--listen`): where workers register
//!   (`JoinCluster`), heartbeat, and receive `Assign` tables.
//!
//! Prints one parsable line per bound address so wrappers (examples, CI)
//! can bind to port 0 and discover the real ports:
//!
//! ```text
//! coordinator listening at 127.0.0.1:41233
//! event layer at 127.0.0.1:41234
//! admin at 127.0.0.1:41235
//! ```
//!
//! Whenever the epoch changes the current assignment table is printed as
//! an aligned grid. Runs until killed.

use invalidb::broker::Broker;
use invalidb::cluster::{Coordinator, CoordinatorConfig, RoundRobin, RowAffinity};
use invalidb::common::GridShape;
use invalidb::net::{BrokerServer, BrokerServerConfig};
use std::sync::Arc;
use std::time::Duration;

struct Options {
    listen: String,
    event_listen: String,
    query_partitions: usize,
    write_partitions: usize,
    heartbeat_timeout: Duration,
    admin: Option<String>,
    placement: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: invalidb-coordinatord [--listen ADDR] [--event-listen ADDR] \
         [--qp N] [--wp N] [--heartbeat-timeout-ms MS] [--admin ADDR] \
         [--placement round-robin|row-affinity]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        listen: "127.0.0.1:0".into(),
        event_listen: "127.0.0.1:0".into(),
        query_partitions: 2,
        write_partitions: 2,
        heartbeat_timeout: Duration::from_secs(2),
        admin: None,
        placement: "round-robin".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => opts.listen = value("--listen"),
            "--event-listen" => opts.event_listen = value("--event-listen"),
            "--qp" => opts.query_partitions = value("--qp").parse().unwrap_or_else(|_| usage()),
            "--wp" => opts.write_partitions = value("--wp").parse().unwrap_or_else(|_| usage()),
            "--heartbeat-timeout-ms" => {
                opts.heartbeat_timeout = Duration::from_millis(
                    value("--heartbeat-timeout-ms").parse().unwrap_or_else(|_| usage()),
                )
            }
            "--admin" => opts.admin = Some(value("--admin")),
            "--placement" => opts.placement = value("--placement"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_options();
    let broker = Broker::new();
    let event_server =
        BrokerServer::bind(opts.event_listen.as_str(), broker.clone(), BrokerServerConfig::default())
            .expect("bind event layer");

    let mut config = CoordinatorConfig::new(GridShape::new(
        opts.query_partitions.max(1),
        opts.write_partitions.max(1),
    ));
    config.heartbeat_timeout = opts.heartbeat_timeout;
    config.admin_addr = opts.admin.clone();
    config.placement = match opts.placement.as_str() {
        "round-robin" => Arc::new(RoundRobin),
        "row-affinity" => Arc::new(RowAffinity),
        other => {
            eprintln!("unknown placement strategy: {other}");
            usage()
        }
    };
    let coordinator = Coordinator::bind(opts.listen.as_str(), broker, config).expect("bind coordinator");

    println!("coordinator listening at {}", coordinator.local_addr());
    println!("event layer at {}", event_server.local_addr());
    if let Some(admin) = coordinator.admin_addr() {
        println!("admin at {admin}");
    }

    // Operator console: print the assignment table on every epoch change.
    let mut last_epoch = 0;
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let epoch = coordinator.epoch();
        if epoch != last_epoch {
            last_epoch = epoch;
            print!("{}", coordinator.assignment().render());
            let _ = std::io::Write::flush(&mut std::io::stdout());
        }
    }
}
