//! # InvaliDB
//!
//! A Rust reproduction of *InvaliDB: Scalable Push-Based Real-Time Queries
//! on Top of Pull-Based Databases* (Wingerath, Gessert, Ritter; PVLDB 2020).
//!
//! This facade crate re-exports the public API of every workspace crate so
//! applications can depend on a single `invalidb` crate:
//!
//! * [`common`] — document model, partitioning grid, notification types
//! * [`json`] — JSON wire codec for documents
//! * [`query`] — MongoDB-compatible pluggable query engine
//! * [`store`] — embedded pull-based document database
//! * [`broker`] — the event layer (async pub/sub)
//! * [`stream`] — mini stream processor hosting the matching topology
//! * [`core`] — the InvaliDB cluster (2-D partitioned matching)
//! * [`client`] — the application server / InvaliDB client
//! * [`net`] — TCP event-layer transport (framing, reconnect, chaos proxy)
//! * [`baselines`] — poll-and-diff and log-tailing comparators
//! * [`sim`] — discrete-event simulator for scalability studies
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough: start a
//! store, broker and cluster; subscribe to a real-time query through an
//! application server; perform writes and receive push notifications.

pub use invalidb_baselines as baselines;
pub use invalidb_broker as broker;
pub use invalidb_client as client;
pub use invalidb_common as common;
pub use invalidb_core as core;
pub use invalidb_json as json;
pub use invalidb_net as net;
pub use invalidb_query as query;
pub use invalidb_sim as sim;
pub use invalidb_store as store;
pub use invalidb_stream as stream;

pub use invalidb_common::{
    doc, AfterImage, ChangeItem, Document, Key, MatchType, Notification, NotificationKind, QueryHash,
    QuerySpec, ResultItem, SortDirection, SubscriptionId, TenantId, Value, Version,
};
