//! # InvaliDB
//!
//! A Rust reproduction of *InvaliDB: Scalable Push-Based Real-Time Queries
//! on Top of Pull-Based Databases* (Wingerath, Gessert, Ritter; PVLDB 2020).
//!
//! This facade crate re-exports the public API of every workspace crate so
//! applications can depend on a single `invalidb` crate:
//!
//! * [`common`] — document model, partitioning grid, notification types
//! * [`json`] — JSON wire codec for documents
//! * [`query`] — MongoDB-compatible pluggable query engine
//! * [`store`] — embedded pull-based document database
//! * [`broker`] — the event layer (async pub/sub)
//! * [`stream`] — mini stream processor hosting the matching topology
//! * [`core`] — the InvaliDB cluster (2-D partitioned matching)
//! * [`client`] — the application server / InvaliDB client
//! * [`cluster`] — multi-process tier: coordinator, remote workers, failover
//! * [`net`] — TCP event-layer transport (framing, reconnect, chaos proxy)
//! * [`obs`] — pipeline observability: stage tracing + metrics registry
//! * [`baselines`] — poll-and-diff and log-tailing comparators
//! * [`sim`] — discrete-event simulator for scalability studies
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough: start a
//! store, broker and cluster; subscribe to a real-time query through an
//! application server; perform writes and receive push notifications.
//!
//! ## The layered client API
//!
//! The recommended surface, re-exported here at the top level:
//!
//! * Configuration through validating builders —
//!   [`AppServerConfig::builder`](client::AppServerConfig::builder) and
//!   [`ClusterConfig::builder`](core::ClusterConfig::builder) — which
//!   reject inconsistent settings at construction time instead of
//!   panicking deep inside the pipeline.
//! * One [`Error`] type for every client-facing operation
//!   (`subscribe`, `find`, the write methods), with [`From`] conversions
//!   so `?` works across the store/config boundary.
//! * Event consumption through the [`Events`] iterator
//!   ([`Subscription::events`](client::Subscription::events)) — blocking,
//!   non-blocking, and coalescing modes behind one interface.
//!
//! ## Observability
//!
//! The [`obs`] crate threads a sampled [`TraceContext`]
//! through every pipeline stage (app server → broker → ingestion →
//! matching → sorting → notifier → delivery) and aggregates per-stage
//! latency histograms, counters, and gauges in one
//! [`MetricsRegistry`]. Snapshots render as a text
//! table or JSON via [`MetricsSnapshot`]. Enable
//! tracing by setting
//! [`trace_sample_every`](client::AppServerConfig::trace_sample_every) and
//! read a delivered notification's breakdown from
//! [`Subscription::last_trace`](client::Subscription::last_trace).
//!
//! ## The operational plane
//!
//! Every long-running component — [`Cluster`], [`AppServer`], and
//! `net`'s `BrokerServer` — can host an [`AdminServer`]: a dependency-free
//! HTTP endpoint serving
//!
//! * `/metrics` — Prometheus text exposition of the registry snapshot
//!   (and `/metrics.json` for the JSON rendering of the same numbers),
//! * `/healthz` — the [`HealthReport`] of a [`HealthMonitor`]-derived
//!   cluster health state (`healthy`/`degraded`/`unavailable`, with
//!   machine-readable causes; HTTP 503 when unavailable),
//! * `/queries` — the [`SlowQueryLog`]'s heaviest continuous queries,
//! * `/flight` — the [`FlightRecorder`]'s ring of recent pipeline events
//!   (reconnects, queue drops, decode errors, health transitions).
//!
//! Bind it with `ClusterConfig::builder(..).admin_addr("127.0.0.1:9464")`
//! (and the analogous `AppServerConfig` / `BrokerServerConfig` settings);
//! see `examples/invalidb_top.rs` for a live terminal dashboard built on
//! `/metrics` and the README's "Operations" runbook for the full tour.

#![deny(missing_docs)]

pub use invalidb_baselines as baselines;
pub use invalidb_broker as broker;
pub use invalidb_client as client;
pub use invalidb_cluster as cluster;
pub use invalidb_common as common;
pub use invalidb_core as core;
pub use invalidb_json as json;
pub use invalidb_net as net;
pub use invalidb_obs as obs;
pub use invalidb_query as query;
pub use invalidb_sim as sim;
pub use invalidb_store as store;
pub use invalidb_stream as stream;

pub use invalidb_client::{
    AppServer, AppServerConfig, AppServerConfigBuilder, ClientEvent, Error, Events, Subscription,
};
pub use invalidb_common::{
    doc, AfterImage, ChangeItem, Document, Key, MatchType, Notification, NotificationKind, QueryHash,
    QuerySpec, ResultItem, SortDirection, Stage, SubscriptionId, TenantId, TraceContext, Value, Version,
};
pub use invalidb_core::{Cluster, ClusterConfig, ClusterConfigBuilder};
pub use invalidb_obs::{
    AdminConfig, AdminServer, FlightEvent, FlightEventKind, FlightRecorder, HealthMonitor, HealthPolicy,
    HealthReport, HealthStatus, MetricsRegistry, MetricsSnapshot, SlowQueryEntry, SlowQueryLog,
};
